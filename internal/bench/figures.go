package bench

import (
	"fmt"
	"strings"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/convert"
	"etlvirt/internal/core"
	"etlvirt/internal/credit"
	"etlvirt/internal/errhandle"
)

// Fig7Row is one point of Figure 7 (performance with dataset size).
type Fig7Row struct {
	PaperMRows int // the paper's x-axis: 25/50/75/100 million rows
	Times      PhaseTimes
}

// Fig7 reproduces Figure 7: total job execution time split into acquisition,
// application and other phases across dataset sizes. scale is the number of
// simulation rows standing in for one paper-million; <=0 uses the default.
func Fig7(scale int) ([]Fig7Row, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	var out []Fig7Row
	for _, m := range []int{25, 50, 75, 100} {
		cfg := RunConfig{
			Workload: Workload{Rows: m * scale / 25, RowBytes: 500, Seed: int64(m)},
			Sessions: 2, ChunkRecords: 500,
			// The paper's pipeline compresses staged files before upload;
			// Figure 7 attributes that work to the acquisition phase.
			Node: core.Config{Gzip: true},
		}
		p, err := RunImport(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig7 %dM: %w", m, err)
		}
		out = append(out, Fig7Row{PaperMRows: m, Times: p})
	}
	return out, nil
}

// Fig7Trace runs one Figure 7-shaped import with distributed tracing
// enabled and returns the stitched cross-process Chrome trace — the
// artifact CI attaches to bench-smoke runs so a regression's timeline is
// one download away.
func Fig7Trace(scale int) ([]byte, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	cfg := RunConfig{
		Workload: Workload{Rows: scale, RowBytes: 500, Seed: 7},
		Sessions: 2, ChunkRecords: 500,
		Node:  core.Config{Gzip: true},
		Trace: true,
	}
	p, err := RunImport(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig7 trace run: %w", err)
	}
	if len(p.ChromeTrace) == 0 {
		return nil, fmt.Errorf("fig7 trace run produced no trace")
	}
	return p.ChromeTrace, nil
}

// FormatFig7 renders the Figure 7 series.
func FormatFig7(rows []Fig7Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: Performance with Different Dataset Sizes\n")
	sb.WriteString("rows(M)      acquisition      application            other            total\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%7d %16v %16v %16v %16v\n",
			r.PaperMRows, r.Times.Acquisition.Round(time.Millisecond),
			r.Times.Application.Round(time.Millisecond),
			r.Times.Other.Round(time.Millisecond),
			r.Times.Total.Round(time.Millisecond))
	}
	if len(rows) >= 4 {
		base := rows[0].Times
		last := rows[len(rows)-1].Times
		fmt.Fprintf(&sb, "4x growth: acquisition %+.0f%%, application %+.0f%%\n",
			pctIncrease(base.Acquisition, last.Acquisition),
			pctIncrease(base.Application, last.Application))
	}
	if len(rows) > 0 {
		sb.WriteString(formatStages(rows[len(rows)-1].PaperMRows, rows[len(rows)-1].Times.Stages))
	}
	return sb.String()
}

// formatStages renders the per-stage histogram summary block appended to
// Figure 7: where the largest run's time went, stage by stage.
func formatStages(paperMRows int, stages []StageSummary) string {
	if len(stages) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "per-stage latency, %dM-row run:\n", paperMRows)
	sb.WriteString("stage                                count         mean          p50          p95\n")
	for _, s := range stages {
		render := fmtSeconds
		if !strings.HasSuffix(s.Name, "_seconds") {
			render = func(v float64) string { return fmt.Sprintf("%.1f", v) }
		}
		fmt.Fprintf(&sb, "%-34s %8d %12s %12s %12s\n",
			s.Name, s.Count, render(s.Mean), render(s.P50), render(s.P95))
	}
	return sb.String()
}

// fmtSeconds renders a seconds value as a rounded duration.
func fmtSeconds(v float64) string {
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(10 * time.Nanosecond).String()
	}
}

func pctIncrease(base, v time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return (float64(v)/float64(base) - 1) * 100
}

// Fig8Row is one point of Figure 8 (effect of row width).
type Fig8Row struct {
	RowBytes int
	Rows     int
	Times    PhaseTimes
}

// Fig8 reproduces Figure 8: four datasets of identical total volume but
// different row widths (250 B x 4N ... 1000 B x N rows). Wider rows need
// fewer per-record conversion iterations and finish faster.
func Fig8(scale int) ([]Fig8Row, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	baseRows := 4 * scale // rows at the narrowest width
	var out []Fig8Row
	for _, width := range []int{250, 500, 750, 1000} {
		rows := baseRows * 250 / width
		cfg := RunConfig{
			Workload: Workload{Rows: rows, RowBytes: width, Seed: int64(width)},
			Sessions: 2, ChunkRecords: 500,
		}
		p, err := RunImport(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 width %d: %w", width, err)
		}
		out = append(out, Fig8Row{RowBytes: width, Rows: rows, Times: p})
	}
	return out, nil
}

// FormatFig8 renders the Figure 8 series.
func FormatFig8(rows []Fig8Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: Effect of Row Width on Bulk Load Performance (constant volume)\n")
	sb.WriteString("row bytes     rows      acquisition            total\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%9d %8d %16v %16v\n",
			r.RowBytes, r.Rows,
			r.Times.Acquisition.Round(time.Millisecond),
			r.Times.Total.Round(time.Millisecond))
	}
	return sb.String()
}

// Fig9Row is one point of Figure 9 (acquisition scalability with cores).
type Fig9Row struct {
	Cores      int
	TimePct    float64 // acquisition wall clock as % of the 2-core baseline
	Efficiency float64 // S = Ts / (Tp * P), P = cores/baseline
}

// Fig9 reproduces Figure 9: acquisition wall-clock versus the compute
// resources given to the node (DataConverter/FileWriter parallelism stands
// in for CPU cores; the client uses enough sessions to keep the node busy).
// The application phase is excluded, as in the paper.
//
// Per-chunk conversion cost is modelled as blocking work (see
// convert.Options.SimulatedByteCost) so the sweep measures the pipeline's
// parallel structure even on hosts without many physical cores; the fixed
// setup/COPY/teardown portion is real and produces the same efficiency
// degradation at high core counts the paper reports.
func Fig9(scale int) ([]Fig9Row, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	w := Workload{Rows: 12 * scale, RowBytes: 500, Seed: 9}
	cores := []int{2, 4, 8, 12, 16}
	var acq []time.Duration
	for _, c := range cores {
		cfg := RunConfig{
			Workload: w,
			Node: core.Config{
				Converters:  c,
				FileWriters: maxInt(1, c/4),
				Credits:     64, // constant, ample: only converter parallelism varies
				ConvertOpts: convert.Options{SimulatedByteCost: 150 * time.Nanosecond},
			},
			Sessions:     16,
			ChunkRecords: 50,
		}
		p, err := RunImport(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig9 cores %d: %w", c, err)
		}
		acq = append(acq, p.Acquisition)
	}
	base := acq[0]
	var out []Fig9Row
	for i, c := range cores {
		pMult := float64(c) / float64(cores[0])
		out = append(out, Fig9Row{
			Cores:      c,
			TimePct:    float64(acq[i]) / float64(base) * 100,
			Efficiency: float64(base) / (float64(acq[i]) * pMult),
		})
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatFig9 renders the Figure 9 series.
func FormatFig9(rows []Fig9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: Data Acquisition Scalability with No. CPU Cores\n")
	sb.WriteString("cores   time %% of 2-core   speedup efficiency S\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%5d %18.1f %22.2f\n", r.Cores, r.TimePct, r.Efficiency)
	}
	return sb.String()
}

// Fig10Row is one point of Figure 10 (scalability with the credit pool).
type Fig10Row struct {
	Credits  int
	RateMBs  float64
	OOM      bool
	MaxWaits int64
}

// Fig10 reproduces Figure 10: acquisition rate across CreditManager pool
// sizes on a 50-column table, including the out-of-memory failure when the
// pool is effectively unbounded relative to the node's memory budget.
func Fig10(scale int) ([]Fig10Row, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	w := Workload{Rows: 6 * scale, RowBytes: 1000, Cols: 48, Seed: 10}
	var out []Fig10Row
	for _, credits := range []int{2, 8, 32, 128, 1024, 8192, 100000} {
		cfg := RunConfig{
			Workload: w,
			Node: core.Config{
				Credits:     credits,
				Converters:  4,
				FileWriters: 2,
			},
			Sessions:     6,
			ChunkRecords: 100,
		}
		// best of three runs: single-host scheduling noise would otherwise
		// dominate the plateau the experiment is about
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			p, err := RunImport(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig10 credits %d: %w", credits, err)
			}
			if rate := p.AcquireRateMBs(); rate > best {
				best = rate
			}
		}
		out = append(out, Fig10Row{Credits: credits, RateMBs: best})
	}
	// The one-million-credit run of the paper: with no back-pressure the node
	// exhausts its memory budget and the job dies.
	oomCfg := RunConfig{
		Workload: w,
		Node: core.Config{
			Credits:     1_000_000,
			MemBudget:   256 << 10, // deliberately small budget
			Converters:  1,         // slow consumer so chunks pile up
			FileWriters: 1,
		},
		Sessions:     6,
		ChunkRecords: 100,
	}
	_, err := RunImport(oomCfg)
	oom := err != nil && strings.Contains(err.Error(), credit.ErrOutOfMemory.Error())
	out = append(out, Fig10Row{Credits: 1_000_000, OOM: oom})
	return out, nil
}

// FormatFig10 renders the Figure 10 series.
func FormatFig10(rows []Fig10Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: Data Acquisition Scalability with No. Credits\n")
	sb.WriteString("credits     acquisition MB/s\n")
	for _, r := range rows {
		if r.OOM {
			fmt.Fprintf(&sb, "%8d   OUT OF MEMORY (job failed before completion)\n", r.Credits)
			continue
		}
		fmt.Fprintf(&sb, "%8d %18.1f\n", r.Credits, r.RateMBs)
	}
	return sb.String()
}

// Fig11Row is one point of Figure 11 (error-handling performance).
type Fig11Row struct {
	ErrPct     float64
	Adaptive   time.Duration // virtualizer with adaptive error handling
	Baseline   time.Duration // singleton-insert baseline
	AdaptStmts int64
}

// Fig11 reproduces Figure 11: elapsed time versus the percentage of
// erroneous records, virtualizer (bulk load + adaptive splitting) against
// the singleton-insert baseline.
//
// Two modelling choices mirror the paper's setup. First, every CDW
// statement pays a fixed overhead (StmtOverhead) standing in for the cloud
// round trip — this is what makes singleton loading expensive in the first
// place. Second, the virtualizer caps max_errors, the mitigation the paper
// itself describes: "Hyper-Q overcomes such overhead by limiting the
// maximum number of errors to detect"; beyond the budget, failing ranges
// are recorded as blocks instead of being isolated tuple by tuple.
func Fig11(scale int) ([]Fig11Row, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	rows := 2 * scale
	maxErrors := rows * 3 / 100 // the paper's max_errors cap
	if maxErrors < 10 {
		maxErrors = 10
	}
	stmtCost := cdw.Options{StmtOverhead: 500 * time.Microsecond}
	var out []Fig11Row
	for _, rate := range []float64{0, 0.01, 0.02, 0.05, 0.10} {
		w := Workload{Rows: rows, RowBytes: 250, ErrRate: rate, NoPK: true, Seed: int64(rate * 1000)}
		adaptive, err := RunImport(RunConfig{
			Workload:     w,
			CDW:          stmtCost,
			Sessions:     2,
			ChunkRecords: 500,
			ScriptExtra:  fmt.Sprintf(" maxerrors %d", maxErrors),
		})
		if err != nil {
			return nil, fmt.Errorf("fig11 adaptive %.0f%%: %w", rate*100, err)
		}
		baseline, err := RunBaselineSingleton(RunConfig{Workload: w, CDW: stmtCost})
		if err != nil {
			return nil, fmt.Errorf("fig11 baseline %.0f%%: %w", rate*100, err)
		}
		out = append(out, Fig11Row{
			ErrPct:     rate * 100,
			Adaptive:   adaptive.Total,
			Baseline:   baseline.Total,
			AdaptStmts: adaptive.ApplyStmts,
		})
	}
	return out, nil
}

// FormatFig11 renders the Figure 11 series.
func FormatFig11(rows []Fig11Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: Error Handling Performance\n")
	sb.WriteString("errors %%      adaptive (virt)    baseline (singleton)   adaptive DML stmts\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8.0f %18v %22v %20d\n",
			r.ErrPct, r.Adaptive.Round(time.Millisecond),
			r.Baseline.Round(time.Millisecond), r.AdaptStmts)
	}
	return sb.String()
}

// MaxErrorBudget returns the errhandle default, exposed so callers can
// reason about budgets in reports.
const MaxErrorBudget = errhandle.DefaultMaxErrors
