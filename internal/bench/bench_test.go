package bench

import (
	"strings"
	"testing"

	"etlvirt/internal/ltype"
	"etlvirt/internal/wire"

	"etlvirt/internal/convert"
)

func TestWorkloadGenerate(t *testing.T) {
	w := Workload{Rows: 100, RowBytes: 500, Seed: 1}
	data := w.Generate()
	lines := ltype.SplitVartextLines(data)
	if len(lines) != 100 {
		t.Fatalf("rows = %d", len(lines))
	}
	avg := AvgRowBytes(data, 100)
	if avg < 350 || avg > 650 {
		t.Errorf("avg row bytes = %d, want ~500", avg)
	}
	layout := w.Layout()
	for i, line := range lines {
		if _, err := ltype.ParseVartextRecord(line, '|', layout); err != nil {
			t.Fatalf("row %d does not match layout: %v", i, err)
		}
	}
}

func TestWorkloadErrorInjection(t *testing.T) {
	w := Workload{Rows: 1000, RowBytes: 250, ErrRate: 0.1, Seed: 2}
	lines := ltype.SplitVartextLines(w.Generate())
	bad := 0
	for _, l := range lines {
		if strings.Contains(l, "9999-99-99") {
			bad++
		}
	}
	if bad < 60 || bad > 140 {
		t.Errorf("injected errors = %d, want ~100", bad)
	}
}

func TestWorkloadDupInjection(t *testing.T) {
	w := Workload{Rows: 1000, RowBytes: 250, DupRate: 0.1, Seed: 3}
	lines := ltype.SplitVartextLines(w.Generate())
	seen := map[string]bool{}
	dups := 0
	for _, l := range lines {
		key := strings.SplitN(l, "|", 2)[0]
		if seen[key] {
			dups++
		}
		seen[key] = true
	}
	if dups < 60 || dups > 140 {
		t.Errorf("duplicates = %d, want ~100", dups)
	}
}

func TestWorkloadScriptParsesAndConverts(t *testing.T) {
	w := Workload{Rows: 10, RowBytes: 500, Cols: 48, Seed: 4}
	layout := w.Layout()
	if len(layout.Fields) != 50 {
		t.Errorf("50-col workload has %d fields", len(layout.Fields))
	}
	conv, err := convert.NewConverter(layout, wire.FormatVartext, '|', convert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := conv.Convert(w.Generate(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 10 || len(res.Errors) != 0 {
		t.Errorf("convert: rows=%d errs=%v", res.Rows, res.Errors)
	}
	if !strings.Contains(w.TargetDDL("t"), "PRIMARY KEY (K)") {
		t.Error("target DDL missing PK")
	}
}

func TestRunImportSmall(t *testing.T) {
	p, err := RunImport(RunConfig{
		Workload:     Workload{Rows: 300, RowBytes: 300, Seed: 5},
		Sessions:     2,
		ChunkRecords: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Inserted != 300 || p.ErrorsET != 0 || p.ErrorsUV != 0 {
		t.Errorf("times: %+v", p)
	}
	if p.Acquisition <= 0 || p.Total <= 0 {
		t.Errorf("phase durations missing: %+v", p)
	}
	if p.ApplyStmts != 1 {
		t.Errorf("clean load should need one DML statement, got %d", p.ApplyStmts)
	}
}

func TestRunImportWithErrors(t *testing.T) {
	p, err := RunImport(RunConfig{
		Workload:     Workload{Rows: 200, RowBytes: 250, ErrRate: 0.05, Seed: 6},
		ChunkRecords: 50,
		ScriptExtra:  " maxerrors 1000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.ErrorsET == 0 {
		t.Error("no errors recorded despite injection")
	}
	if p.Inserted+p.ErrorsET != 200 {
		t.Errorf("rows unaccounted: inserted=%d errors=%d", p.Inserted, p.ErrorsET)
	}
	if p.ApplyStmts <= p.ErrorsET {
		t.Errorf("adaptive splitting should cost extra statements: %d stmts for %d errors",
			p.ApplyStmts, p.ErrorsET)
	}
}

func TestRunBaselineSingleton(t *testing.T) {
	p, err := RunBaselineSingleton(RunConfig{
		Workload: Workload{Rows: 100, RowBytes: 250, ErrRate: 0.05, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Inserted+p.ErrorsET != 100 {
		t.Errorf("rows unaccounted: %+v", p)
	}
	if p.ApplyStmts != 100 {
		t.Errorf("baseline should issue one statement per row, got %d", p.ApplyStmts)
	}
}

// TestFig11Shape asserts the paper's headline comparison on a small scale:
// the virtualizer beats the singleton baseline with no errors and still
// beats it at 10% errors, while its cost grows with the error rate.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs full figure sweep")
	}
	rows, err := Fig11(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("points: %d", len(rows))
	}
	if rows[0].Adaptive >= rows[0].Baseline {
		t.Errorf("0%% errors: adaptive %v should beat baseline %v", rows[0].Adaptive, rows[0].Baseline)
	}
	last := rows[len(rows)-1]
	if last.Adaptive >= last.Baseline {
		t.Errorf("10%% errors: adaptive %v should still beat baseline %v", last.Adaptive, last.Baseline)
	}
	if last.AdaptStmts <= rows[0].AdaptStmts {
		t.Errorf("adaptive statement count should grow with errors: %d -> %d",
			rows[0].AdaptStmts, last.AdaptStmts)
	}
}

// TestFig7Shape asserts acquisition dominates and grows with size.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs full figure sweep")
	}
	rows, err := Fig7(400)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Times.Acquisition < r.Times.Application {
			t.Errorf("%dM: acquisition %v should dominate application %v",
				r.PaperMRows, r.Times.Acquisition, r.Times.Application)
		}
	}
	if rows[3].Times.Total <= rows[0].Times.Total {
		t.Errorf("total time should grow with size: %v -> %v",
			rows[0].Times.Total, rows[3].Times.Total)
	}
	out := FormatFig7(rows)
	if !strings.Contains(out, "Figure 7") {
		t.Errorf("format: %s", out)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full ablation sweeps")
	}
	rows, err := AblationSyncAck(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("sync ablation rows: %d", len(rows))
	}
	rows, err = AblationCompression(150)
	if err != nil {
		t.Fatal(err)
	}
	if !raceEnabled && rows[1].Acquisition >= rows[0].Acquisition {
		// Skipped under the race detector: its instrumentation inflates the
		// CPU cost of gzip far past the simulated uplink savings.
		t.Errorf("gzip should win on a slow uplink: %v vs %v", rows[1].Acquisition, rows[0].Acquisition)
	}
	if _, err := AblationFileSize(150); err != nil {
		t.Fatal(err)
	}
	out := FormatAblations("x", rows)
	if !strings.Contains(out, "Ablation") {
		t.Errorf("format: %s", out)
	}
}
