package bench

import (
	"fmt"
	"strings"
	"time"

	"etlvirt/internal/convert"
	"etlvirt/internal/core"
)

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Name        string
	Acquisition time.Duration
	Total       time.Duration
	Files       int64
	UploadMB    float64
}

// AblationSyncAck quantifies §5's design argument: acknowledging chunks
// immediately (with CreditManager back-pressure) versus synchronizing the
// pipeline by acknowledging only after conversion and serialization. The
// synchronous variant stalls every session for the full per-chunk pipeline
// latency; the paper rejects it for exactly this cost.
func AblationSyncAck(scale int) ([]AblationRow, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	w := Workload{Rows: 8 * scale, RowBytes: 500, Seed: 21}
	var out []AblationRow
	for _, sync := range []bool{false, true} {
		cfg := RunConfig{
			Workload: w,
			Node: core.Config{
				Converters:      4,
				Credits:         32,
				SyncAcquisition: sync,
				ConvertOpts:     convert.Options{SimulatedByteCost: 150 * time.Nanosecond},
			},
			Sessions:     4,
			ChunkRecords: 100,
		}
		p, err := RunImport(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation sync=%v: %w", sync, err)
		}
		name := "immediate ack + credits (paper)"
		if sync {
			name = "synchronized pipeline (rejected design)"
		}
		out = append(out, AblationRow{Name: name, Acquisition: p.Acquisition, Total: p.Total})
	}
	return out, nil
}

// AblationCompression quantifies §6's upload tuning: gzip of intermediate
// files costs CPU but pays off when the link to the cloud store is slow.
func AblationCompression(scale int) ([]AblationRow, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	w := Workload{Rows: 6 * scale, RowBytes: 500, Seed: 22}
	var out []AblationRow
	for _, gz := range []bool{false, true} {
		cfg := RunConfig{
			Workload:          w,
			Node:              core.Config{Gzip: gz, FileSizeThreshold: 64 << 10},
			Sessions:          2,
			ChunkRecords:      200,
			UplinkBytesPerSec: 2 << 20, // constrained 2 MB/s uplink
		}
		p, err := RunImport(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation gzip=%v: %w", gz, err)
		}
		name := "uncompressed upload"
		if gz {
			name = "gzip intermediate files"
		}
		out = append(out, AblationRow{
			Name:        name,
			Acquisition: p.Acquisition,
			Total:       p.Total,
			Files:       p.Files,
			UploadMB:    float64(p.Bytes) / 1e6,
		})
	}
	return out, nil
}

// AblationFileSize sweeps the intermediate-file size threshold of §6: small
// files parallelize uploads but multiply per-file COPY overhead.
func AblationFileSize(scale int) ([]AblationRow, error) {
	if scale <= 0 {
		scale = RowsPerPaperMillion
	}
	w := Workload{Rows: 8 * scale, RowBytes: 500, Seed: 23}
	var out []AblationRow
	for _, threshold := range []int{16 << 10, 128 << 10, 1 << 20, 8 << 20} {
		cfg := RunConfig{
			Workload:     w,
			Node:         core.Config{FileSizeThreshold: threshold, FileWriters: 2},
			Sessions:     4,
			ChunkRecords: 200,
		}
		p, err := RunImport(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation filesize=%d: %w", threshold, err)
		}
		out = append(out, AblationRow{
			Name:        fmt.Sprintf("threshold %dKiB", threshold>>10),
			Acquisition: p.Acquisition,
			Total:       p.Total,
			Files:       p.Files,
		})
	}
	return out, nil
}

// FormatAblations renders ablation sweeps.
func FormatAblations(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s\n", title)
	fmt.Fprintf(&sb, "%-42s %14s %12s %7s\n", "configuration", "acquisition", "total", "files")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-42s %14v %12v %7d\n",
			r.Name, r.Acquisition.Round(time.Millisecond), r.Total.Round(time.Millisecond), r.Files)
	}
	return sb.String()
}
