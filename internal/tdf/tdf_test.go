package tdf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Seq:  7,
		Last: true,
		Columns: []Column{
			{Name: "id", DeclType: "INTEGER"},
			{Name: "name", DeclType: "VARCHAR(50)"},
			{Name: "tags", DeclType: "LIST"},
			{Name: "meta", DeclType: "STRUCT"},
		},
		Rows: [][]Value{
			{Int(1), String("alice"), List(String("a"), String("b")), Struct(
				StructField{Name: "score", Value: Float(9.5)},
				StructField{Name: "active", Value: Bool(true)},
			)},
			{Int(2), Null(), List(), Struct()},
			{Int(-3), String("bob"), List(Int(1), List(Int(2), Int(3))), Null()},
		},
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := samplePacket()
	enc, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != p.Seq || got.Last != p.Last || len(got.Columns) != len(p.Columns) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range p.Columns {
		if got.Columns[i] != p.Columns[i] {
			t.Errorf("column %d: %+v want %+v", i, got.Columns[i], p.Columns[i])
		}
	}
	if len(got.Rows) != len(p.Rows) {
		t.Fatalf("row count %d want %d", len(got.Rows), len(p.Rows))
	}
	for i := range p.Rows {
		for j := range p.Rows[i] {
			if !got.Rows[i][j].Equal(p.Rows[i][j]) {
				t.Errorf("row %d col %d: %+v want %+v", i, j, got.Rows[i][j], p.Rows[i][j])
			}
		}
	}
}

func TestEmptyPacket(t *testing.T) {
	p := &Packet{Seq: 0, Last: false}
	enc, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 0 || len(got.Rows) != 0 || got.Last {
		t.Errorf("unexpected decode %+v", got)
	}
}

func TestRowArityMismatch(t *testing.T) {
	p := &Packet{
		Columns: []Column{{Name: "a"}},
		Rows:    [][]Value{{Int(1), Int(2)}},
	}
	if _, err := EncodePacket(p); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	p := samplePacket()
	enc, err := EncodePacket(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePacket(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := DecodePacket([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	for cut := 4; cut < len(enc); cut += 7 {
		if _, err := DecodePacket(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodePacket(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestUnknownTag(t *testing.T) {
	enc, err := EncodePacket(&Packet{Columns: []Column{{Name: "a"}}, Rows: [][]Value{{Int(1)}}})
	if err != nil {
		t.Fatal(err)
	}
	// The last-but-varint bytes include the value tag; corrupt the tag byte of
	// the single value (it is the third byte from the end: tag + varint(2)).
	enc[len(enc)-2] = 0xEE
	if _, err := DecodePacket(enc); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestDeepNestingLimit(t *testing.T) {
	v := Int(0)
	for i := 0; i < maxNesting+5; i++ {
		v = List(v)
	}
	enc, err := EncodePacket(&Packet{Columns: []Column{{Name: "x"}}, Rows: [][]Value{{v}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePacket(enc); err == nil {
		t.Error("over-deep nesting accepted")
	}
}

func randomValue(r *rand.Rand, depth int) Value {
	max := 8
	if depth > 3 {
		max = 6 // no nested kinds below depth 3
	}
	switch r.Intn(max) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(int64(r.Uint64()))
	case 3:
		return Float(r.NormFloat64() * 1e6)
	case 4:
		b := make([]byte, r.Intn(20))
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return String(string(b))
	case 5:
		b := make([]byte, r.Intn(20))
		r.Read(b)
		return BytesValue(b)
	case 6:
		n := r.Intn(4)
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = randomValue(r, depth+1)
		}
		return Value{Tag: TagList, List: vs}
	default:
		n := r.Intn(4)
		fs := make([]StructField, n)
		for i := range fs {
			fs[i] = StructField{Name: string(rune('a' + i)), Value: randomValue(r, depth+1)}
		}
		return Value{Tag: TagStruct, Fields: fs}
	}
}

func TestPropertyValueRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 0)
		enc, err := AppendValue(nil, v)
		if err != nil {
			return false
		}
		d := decoder{b: enc}
		got, err := d.value(0)
		if err != nil || len(d.b) != 0 {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPacketRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ncols := 1 + r.Intn(5)
		p := &Packet{Seq: r.Uint64() % 1000, Last: r.Intn(2) == 0}
		for i := 0; i < ncols; i++ {
			p.Columns = append(p.Columns, Column{Name: string(rune('a' + i)), DeclType: "X"})
		}
		nrows := r.Intn(10)
		for i := 0; i < nrows; i++ {
			row := make([]Value, ncols)
			for j := range row {
				row[j] = randomValue(r, 0)
			}
			p.Rows = append(p.Rows, row)
		}
		enc, err := EncodePacket(p)
		if err != nil {
			return false
		}
		got, err := DecodePacket(enc)
		if err != nil || got.Seq != p.Seq || got.Last != p.Last || len(got.Rows) != len(p.Rows) {
			return false
		}
		for i := range p.Rows {
			for j := range p.Rows[i] {
				if !got.Rows[i][j].Equal(p.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFloatSpecialValues(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		enc, err := AppendValue(nil, Float(f))
		if err != nil {
			t.Fatal(err)
		}
		d := decoder{b: enc}
		got, err := d.value(0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(Float(f)) {
			t.Errorf("float %v did not round trip", f)
		}
	}
}

func BenchmarkEncodePacket(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodePacket(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePacket(b *testing.B) {
	enc, err := EncodePacket(samplePacket())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePacket(enc); err != nil {
			b.Fatal(err)
		}
	}
}
