// Package tdf implements the Tabular Data Format, the virtualizer's internal
// binary representation for query results (§3 of the paper): "an extensible
// format that can handle arbitrarily large nested data".
//
// A TDF stream is a sequence of packets. Each packet carries a schema and a
// batch of rows. Values are self-describing: every value starts with a type
// tag, so readers can skip data they do not understand and schemas can evolve
// without breaking old readers. Nested LIST and STRUCT values support
// arbitrarily deep composition; large payloads are split across packets by
// the producer (see Cursor in internal/core).
package tdf

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Magic begins every TDF packet.
var Magic = [4]byte{'T', 'D', 'F', '1'}

// Tag identifies the runtime type of an encoded value.
type Tag uint8

// Value tags. Values are self-describing on the wire.
const (
	TagNull   Tag = 0
	TagBool   Tag = 1
	TagInt    Tag = 2 // zigzag varint
	TagFloat  Tag = 3 // 8-byte IEEE-754
	TagString Tag = 4 // varint length + UTF-8 bytes
	TagBytes  Tag = 5 // varint length + bytes
	TagList   Tag = 6 // varint count + values
	TagStruct Tag = 7 // varint count + (name, value) pairs
)

// Value is a decoded TDF value.
type Value struct {
	Tag    Tag
	Bool   bool
	Int    int64
	Float  float64
	Str    string
	Bytes  []byte
	List   []Value
	Fields []StructField
}

// StructField is one named member of a TagStruct value.
type StructField struct {
	Name  string
	Value Value
}

// Null is the NULL value.
func Null() Value { return Value{Tag: TagNull} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{Tag: TagBool, Bool: v} }

// Int returns an integer value.
func Int(v int64) Value { return Value{Tag: TagInt, Int: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{Tag: TagFloat, Float: v} }

// String returns a string value.
func String(v string) Value { return Value{Tag: TagString, Str: v} }

// BytesValue returns a binary value.
func BytesValue(v []byte) Value { return Value{Tag: TagBytes, Bytes: v} }

// List returns a list value.
func List(vs ...Value) Value { return Value{Tag: TagList, List: vs} }

// Struct returns a struct value.
func Struct(fields ...StructField) Value { return Value{Tag: TagStruct, Fields: fields} }

// Equal reports deep equality.
func (v Value) Equal(o Value) bool {
	if v.Tag != o.Tag {
		return false
	}
	switch v.Tag {
	case TagNull:
		return true
	case TagBool:
		return v.Bool == o.Bool
	case TagInt:
		return v.Int == o.Int
	case TagFloat:
		return v.Float == o.Float || (math.IsNaN(v.Float) && math.IsNaN(o.Float))
	case TagString:
		return v.Str == o.Str
	case TagBytes:
		return string(v.Bytes) == string(o.Bytes)
	case TagList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(o.List[i]) {
				return false
			}
		}
		return true
	case TagStruct:
		if len(v.Fields) != len(o.Fields) {
			return false
		}
		for i := range v.Fields {
			if v.Fields[i].Name != o.Fields[i].Name || !v.Fields[i].Value.Equal(o.Fields[i].Value) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Column describes one result column in a packet schema. DeclType carries the
// producer's declared SQL type as an opaque string for the consumer's
// cross-compilation (e.g. "VARCHAR(5)"); TDF itself only cares about tags.
type Column struct {
	Name     string
	DeclType string
}

// Packet is one self-contained batch of rows.
type Packet struct {
	Seq     uint64 // packet order within the stream
	Last    bool   // true on the final packet of a result
	Columns []Column
	Rows    [][]Value
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendValue appends the self-describing encoding of v to dst.
func AppendValue(dst []byte, v Value) ([]byte, error) {
	dst = append(dst, byte(v.Tag))
	switch v.Tag {
	case TagNull:
	case TagBool:
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case TagInt:
		dst = appendVarint(dst, v.Int)
	case TagFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float))
	case TagString:
		dst = appendString(dst, v.Str)
	case TagBytes:
		dst = appendUvarint(dst, uint64(len(v.Bytes)))
		dst = append(dst, v.Bytes...)
	case TagList:
		dst = appendUvarint(dst, uint64(len(v.List)))
		var err error
		for _, e := range v.List {
			if dst, err = AppendValue(dst, e); err != nil {
				return dst, err
			}
		}
	case TagStruct:
		dst = appendUvarint(dst, uint64(len(v.Fields)))
		var err error
		for _, f := range v.Fields {
			dst = appendString(dst, f.Name)
			if dst, err = AppendValue(dst, f.Value); err != nil {
				return dst, err
			}
		}
	default:
		return dst, fmt.Errorf("tdf: cannot encode tag %d", v.Tag)
	}
	return dst, nil
}

type decoder struct {
	b []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("tdf: bad uvarint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("tdf: bad varint")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || len(d.b) < n {
		return nil, fmt.Errorf("tdf: truncated value")
	}
	p := d.b[:n]
	d.b = d.b[n:]
	return p, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	p, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

const maxNesting = 64

func (d *decoder) value(depth int) (Value, error) {
	if depth > maxNesting {
		return Value{}, fmt.Errorf("tdf: nesting exceeds %d levels", maxNesting)
	}
	if len(d.b) == 0 {
		return Value{}, fmt.Errorf("tdf: missing value tag")
	}
	tag := Tag(d.b[0])
	d.b = d.b[1:]
	switch tag {
	case TagNull:
		return Null(), nil
	case TagBool:
		p, err := d.take(1)
		if err != nil {
			return Value{}, err
		}
		return Bool(p[0] != 0), nil
	case TagInt:
		v, err := d.varint()
		if err != nil {
			return Value{}, err
		}
		return Int(v), nil
	case TagFloat:
		p, err := d.take(8)
		if err != nil {
			return Value{}, err
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(p))), nil
	case TagString:
		s, err := d.str()
		if err != nil {
			return Value{}, err
		}
		return String(s), nil
	case TagBytes:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		p, err := d.take(int(n))
		if err != nil {
			return Value{}, err
		}
		b := make([]byte, len(p))
		copy(b, p)
		return BytesValue(b), nil
	case TagList:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		if n > uint64(len(d.b)) {
			return Value{}, fmt.Errorf("tdf: list count %d exceeds remaining bytes", n)
		}
		vs := make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			e, err := d.value(depth + 1)
			if err != nil {
				return Value{}, err
			}
			vs = append(vs, e)
		}
		return Value{Tag: TagList, List: vs}, nil
	case TagStruct:
		n, err := d.uvarint()
		if err != nil {
			return Value{}, err
		}
		if n > uint64(len(d.b)) {
			return Value{}, fmt.Errorf("tdf: struct count %d exceeds remaining bytes", n)
		}
		fs := make([]StructField, 0, n)
		for i := uint64(0); i < n; i++ {
			name, err := d.str()
			if err != nil {
				return Value{}, err
			}
			v, err := d.value(depth + 1)
			if err != nil {
				return Value{}, err
			}
			fs = append(fs, StructField{Name: name, Value: v})
		}
		return Value{Tag: TagStruct, Fields: fs}, nil
	default:
		return Value{}, fmt.Errorf("tdf: unknown tag %d", tag)
	}
}

// EncodePacket serializes a packet. Layout:
//
//	magic[4] | seq uvarint | last byte | ncols uvarint |
//	  per column: name string, decltype string |
//	nrows uvarint | per row: ncols values |
//	crc-less; integrity is delegated to the transport
func EncodePacket(p *Packet) ([]byte, error) {
	dst := append([]byte{}, Magic[:]...)
	dst = appendUvarint(dst, p.Seq)
	if p.Last {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendUvarint(dst, uint64(len(p.Columns)))
	for _, c := range p.Columns {
		dst = appendString(dst, c.Name)
		dst = appendString(dst, c.DeclType)
	}
	dst = appendUvarint(dst, uint64(len(p.Rows)))
	var err error
	for _, row := range p.Rows {
		if len(row) != len(p.Columns) {
			return nil, fmt.Errorf("tdf: row has %d values, schema has %d columns", len(row), len(p.Columns))
		}
		for _, v := range row {
			if dst, err = AppendValue(dst, v); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// DecodePacket parses a packet produced by EncodePacket.
func DecodePacket(b []byte) (*Packet, error) {
	if len(b) < 4 || b[0] != Magic[0] || b[1] != Magic[1] || b[2] != Magic[2] || b[3] != Magic[3] {
		return nil, fmt.Errorf("tdf: bad magic")
	}
	d := decoder{b: b[4:]}
	p := &Packet{}
	var err error
	if p.Seq, err = d.uvarint(); err != nil {
		return nil, err
	}
	lastB, err := d.take(1)
	if err != nil {
		return nil, err
	}
	p.Last = lastB[0] != 0
	ncols, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols > 1<<16 {
		return nil, fmt.Errorf("tdf: implausible column count %d", ncols)
	}
	p.Columns = make([]Column, ncols)
	for i := range p.Columns {
		if p.Columns[i].Name, err = d.str(); err != nil {
			return nil, err
		}
		if p.Columns[i].DeclType, err = d.str(); err != nil {
			return nil, err
		}
	}
	nrows, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nrows > uint64(len(d.b))+1 {
		return nil, fmt.Errorf("tdf: implausible row count %d", nrows)
	}
	p.Rows = make([][]Value, 0, nrows)
	for i := uint64(0); i < nrows; i++ {
		row := make([]Value, ncols)
		for j := range row {
			if row[j], err = d.value(0); err != nil {
				return nil, err
			}
		}
		p.Rows = append(p.Rows, row)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("tdf: %d trailing bytes", len(d.b))
	}
	return p, nil
}
