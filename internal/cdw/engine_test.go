package cdw

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/cloudstore"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(cloudstore.NewMemStore(), Options{
		Now: func() time.Time { return time.Date(2023, 3, 28, 12, 0, 0, 0, time.UTC) },
	})
	return e
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.ExecSQL(sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	return res
}

func q(t *testing.T, e *Engine, sql string) [][]Datum {
	t.Helper()
	return mustExec(t, e, sql).Rows
}

func seedCustomers(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE prod.customer (
		cust_id VARCHAR(5) NOT NULL,
		cust_name VARCHAR(50),
		join_date DATE,
		PRIMARY KEY (cust_id))`)
	mustExec(t, e, `INSERT INTO prod.customer VALUES
		('123', 'Smith', '2012-01-01'),
		('157', 'Jones', '2012-12-01'),
		('200', NULL, '2020-06-15')`)
}

func TestCreateInsertSelect(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	rows := q(t, e, "SELECT cust_id, cust_name FROM prod.customer ORDER BY cust_id")
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0].S != "123" || rows[0][1].S != "Smith" {
		t.Errorf("row0 = %v", rows[0])
	}
	if !rows[2][1].IsNull() {
		t.Errorf("expected NULL name, got %v", rows[2][1])
	}
}

func TestCreateTableErrors(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (a INTEGER)")
	if _, err := e.ExecSQL("CREATE TABLE t (a INTEGER)"); err == nil {
		t.Error("duplicate create accepted")
	}
	mustExec(t, e, "CREATE TABLE IF NOT EXISTS t (a INTEGER)")
	if _, err := e.ExecSQL("CREATE TABLE u (a INTEGER, PRIMARY KEY (nope))"); err == nil {
		t.Error("bad PK column accepted")
	}
	if _, err := e.ExecSQL("CREATE TABLE v (a FOO)"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := e.ExecSQL("SELECT * FROM missing"); err == nil {
		t.Error("missing table accepted")
	}
	mustExec(t, e, "DROP TABLE t")
	if _, err := e.ExecSQL("DROP TABLE t"); err == nil {
		t.Error("double drop accepted")
	}
	mustExec(t, e, "DROP TABLE IF EXISTS t")
}

func TestInsertCoercionsAndDefaults(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE t (
		a BIGINT, b DECIMAL(10,2), c DATE, d VARCHAR(3), f DOUBLE DEFAULT 1.5)`)
	mustExec(t, e, "INSERT INTO t (a, b, c, d) VALUES ('42', '19.999', '2020-02-29', 'xyz')")
	rows := q(t, e, "SELECT a, b, c, d, f FROM t")
	if rows[0][0].I != 42 {
		t.Errorf("a = %v", rows[0][0])
	}
	if rows[0][1].Kind != KDecimal || rows[0][1].I != 2000 { // rounded to scale 2
		t.Errorf("b = %+v", rows[0][1])
	}
	if rows[0][2].Render() != "2020-02-29" {
		t.Errorf("c = %v", rows[0][2].Render())
	}
	if rows[0][4].F != 1.5 {
		t.Errorf("default f = %v", rows[0][4])
	}
	// errors
	for _, bad := range []string{
		"INSERT INTO t (a) VALUES ('notanum')",
		"INSERT INTO t (c) VALUES ('2020-02-30')",
		"INSERT INTO t (d) VALUES ('toolong')",
		"INSERT INTO t (b) VALUES ('999999999999')",
		"INSERT INTO t (a, b) VALUES (1)",
		"INSERT INTO t (nope) VALUES (1)",
	} {
		if _, err := e.ExecSQL(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestNotNullEnforced(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (a INTEGER NOT NULL, b INTEGER)")
	if _, err := e.ExecSQL("INSERT INTO t (b) VALUES (1)"); err == nil {
		t.Error("missing NOT NULL column accepted")
	}
	if _, err := e.ExecSQL("INSERT INTO t VALUES (NULL, 1)"); err == nil {
		t.Error("explicit NULL accepted")
	}
	ee := AsError(func() error { _, err := e.ExecSQL("INSERT INTO t VALUES (NULL, 1)"); return err }())
	if ee.Code != CodeNotNull {
		t.Errorf("code = %d", ee.Code)
	}
}

func TestUniquenessNotEnforcedByDefault(t *testing.T) {
	// The headline CDW property: PRIMARY KEY is declared but NOT enforced.
	e := newTestEngine(t)
	seedCustomers(t, e)
	mustExec(t, e, "INSERT INTO prod.customer VALUES ('123', 'Dup', '2013-01-01')")
	rows := q(t, e, "SELECT count(*) FROM prod.customer WHERE cust_id = '123'")
	if rows[0][0].I != 2 {
		t.Errorf("duplicate not stored: count = %v", rows[0][0])
	}
}

func TestUniquenessEnforcedInEDWMode(t *testing.T) {
	e := NewEngine(nil, Options{EnforceUniqueness: true, RowDetail: true})
	if _, err := e.ExecSQL("CREATE TABLE t (k INTEGER, v VARCHAR(5), PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecSQL("INSERT INTO t VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	_, err := e.ExecSQL("INSERT INTO t VALUES (1, 'b')")
	ee := AsError(err)
	if ee == nil || ee.Code != CodeUniqueness {
		t.Fatalf("want uniqueness error, got %v", err)
	}
	// intra-batch duplicates too
	_, err = e.ExecSQL("INSERT INTO t VALUES (2, 'a'), (2, 'b')")
	if AsError(err).Code != CodeUniqueness {
		t.Errorf("intra-batch dup: %v", err)
	}
	if AsError(err).Row != 2 {
		t.Errorf("row detail = %d, want 2", AsError(err).Row)
	}
	// NULL keys do not collide
	if _, err := e.ExecSQL("CREATE TABLE u (k INTEGER, UNIQUE (k))"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecSQL("INSERT INTO u VALUES (NULL), (NULL)"); err != nil {
		t.Errorf("NULL unique keys rejected: %v", err)
	}
}

func TestRowDetailScrubbedInCDWMode(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (c DATE)")
	_, err := e.ExecSQL("INSERT INTO t VALUES ('2020-01-01'), ('bogus')")
	ee := AsError(err)
	if ee == nil {
		t.Fatal("bad date accepted")
	}
	if ee.Row != 0 {
		t.Errorf("CDW mode leaked row detail: %d", ee.Row)
	}
}

func TestInsertSelect(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	mustExec(t, e, "CREATE TABLE names (n VARCHAR(50))")
	res := mustExec(t, e, "INSERT INTO names SELECT cust_name FROM prod.customer WHERE cust_name IS NOT NULL")
	if res.Activity != 2 {
		t.Errorf("activity = %d", res.Activity)
	}
}

func TestInsertAtomicity(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (c DATE)")
	mustExec(t, e, "INSERT INTO t VALUES ('2020-01-01')")
	// second row fails -> no partial insert
	if _, err := e.ExecSQL("INSERT INTO t VALUES ('2021-01-01'), ('xxxx')"); err == nil {
		t.Fatal("bad insert accepted")
	}
	rows := q(t, e, "SELECT count(*) FROM t")
	if rows[0][0].I != 1 {
		t.Errorf("partial insert leaked: count = %v", rows[0][0])
	}
}

func TestUpdateBasic(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	res := mustExec(t, e, "UPDATE prod.customer SET cust_name = 'Anon' WHERE cust_name IS NULL")
	if res.Activity != 1 {
		t.Errorf("updated %d", res.Activity)
	}
	rows := q(t, e, "SELECT cust_name FROM prod.customer WHERE cust_id = '200'")
	if rows[0][0].S != "Anon" {
		t.Errorf("update missed: %v", rows[0][0])
	}
}

func TestUpdateFromSource(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	mustExec(t, e, "CREATE TABLE stage (k VARCHAR(5), n VARCHAR(50))")
	mustExec(t, e, "INSERT INTO stage VALUES ('123', 'Smith2'), ('157', 'Jones2')")
	res := mustExec(t, e, "UPDATE prod.customer c SET cust_name = s.n FROM stage s WHERE c.cust_id = s.k")
	if res.Activity != 2 {
		t.Errorf("updated %d", res.Activity)
	}
	rows := q(t, e, "SELECT cust_name FROM prod.customer ORDER BY cust_id")
	if rows[0][0].S != "Smith2" || rows[1][0].S != "Jones2" {
		t.Errorf("rows = %v", rows)
	}
}

func TestDelete(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	res := mustExec(t, e, "DELETE FROM prod.customer WHERE join_date < '2015-01-01'")
	if res.Activity != 2 {
		t.Errorf("deleted %d", res.Activity)
	}
	if n := q(t, e, "SELECT count(*) FROM prod.customer")[0][0].I; n != 1 {
		t.Errorf("remaining %d", n)
	}
}

func TestDeleteUsing(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	mustExec(t, e, "CREATE TABLE kill (k VARCHAR(5))")
	mustExec(t, e, "INSERT INTO kill VALUES ('123'), ('200')")
	res := mustExec(t, e, "DELETE FROM prod.customer c USING kill k WHERE c.cust_id = k.k")
	if res.Activity != 2 {
		t.Errorf("deleted %d", res.Activity)
	}
}

func TestTruncate(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	res := mustExec(t, e, "TRUNCATE TABLE prod.customer")
	if res.Activity != 3 {
		t.Errorf("truncated %d", res.Activity)
	}
	if n := q(t, e, "SELECT count(*) FROM prod.customer")[0][0].I; n != 0 {
		t.Errorf("rows remain: %d", n)
	}
}

func TestSelectExpressions(t *testing.T) {
	e := newTestEngine(t)
	rows := q(t, e, "SELECT 1 + 2 * 3, 'a' || 'b', trim('  x  '), upper('hi'), 7 / 2, 7.0 / 2, 2 ** 10")
	wants := []any{int64(7), "ab", "x", "HI", int64(3), 3.5, float64(1024)}
	for i, w := range wants {
		d := rows[0][i]
		switch want := w.(type) {
		case int64:
			if d.Kind != KInt || d.I != want {
				t.Errorf("col %d = %+v, want %d", i, d, want)
			}
		case string:
			if d.S != want {
				t.Errorf("col %d = %+v, want %q", i, d, want)
			}
		case float64:
			if d.Kind != KFloat || d.F != want {
				t.Errorf("col %d = %+v, want %v", i, d, want)
			}
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := newTestEngine(t)
	rows := q(t, e, `SELECT NULL AND FALSE, NULL AND TRUE, NULL OR TRUE, NULL OR FALSE,
		NULL = NULL, 1 = NULL, coalesce(NULL, 5), nullif(3, 3), nullif(3, 4)`)
	r := rows[0]
	if r[0].IsNull() || r[0].Bool { // NULL AND FALSE = FALSE
		t.Errorf("NULL AND FALSE = %+v", r[0])
	}
	if !r[1].IsNull() {
		t.Errorf("NULL AND TRUE = %+v", r[1])
	}
	if r[2].IsNull() || !r[2].Bool {
		t.Errorf("NULL OR TRUE = %+v", r[2])
	}
	if !r[3].IsNull() {
		t.Errorf("NULL OR FALSE = %+v", r[3])
	}
	if !r[4].IsNull() || !r[5].IsNull() {
		t.Errorf("NULL comparisons: %+v %+v", r[4], r[5])
	}
	if r[6].I != 5 {
		t.Errorf("coalesce = %+v", r[6])
	}
	if !r[7].IsNull() || r[8].I != 3 {
		t.Errorf("nullif: %+v %+v", r[7], r[8])
	}
}

func TestWhereNullFiltersOut(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	// cust_name = NULL is NULL -> excluded, not an error
	rows := q(t, e, "SELECT * FROM prod.customer WHERE cust_name = NULL")
	if len(rows) != 0 {
		t.Errorf("NULL predicate returned %d rows", len(rows))
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE sales (region VARCHAR(2), amt DECIMAL(10,2))")
	mustExec(t, e, `INSERT INTO sales VALUES
		('N', '10.00'), ('N', '20.00'), ('S', '5.50'), ('S', NULL), ('E', '1.00')`)
	rows := q(t, e, `SELECT region, count(*) AS c, count(amt), sum(amt), min(amt), max(amt), avg(amt)
		FROM sales GROUP BY region ORDER BY region`)
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	// E: 1 row
	if rows[0][0].S != "E" || rows[0][1].I != 1 {
		t.Errorf("E row: %v", rows[0])
	}
	// N: sum 30.00
	if rows[1][3].asFloat() != 30.0 {
		t.Errorf("N sum: %v", rows[1][3])
	}
	// S: count(*)=2, count(amt)=1
	if rows[2][1].I != 2 || rows[2][2].I != 1 {
		t.Errorf("S counts: %v", rows[2])
	}
	if rows[2][6].F != 5.5 {
		t.Errorf("S avg: %v", rows[2][6])
	}
}

func TestHavingAndDistinct(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (k INTEGER)")
	mustExec(t, e, "INSERT INTO t VALUES (1), (1), (2), (3), (3), (3)")
	rows := q(t, e, "SELECT k FROM t GROUP BY k HAVING count(*) > 1 ORDER BY k")
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 3 {
		t.Errorf("having rows: %v", rows)
	}
	rows = q(t, e, "SELECT DISTINCT k FROM t ORDER BY k DESC")
	if len(rows) != 3 || rows[0][0].I != 3 {
		t.Errorf("distinct: %v", rows)
	}
	rows = q(t, e, "SELECT count(DISTINCT k) FROM t")
	if rows[0][0].I != 3 {
		t.Errorf("count distinct: %v", rows[0][0])
	}
}

func TestGlobalAggregateOnEmptyTable(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (k INTEGER)")
	rows := q(t, e, "SELECT count(*), sum(k), max(k) FROM t")
	if rows[0][0].I != 0 || !rows[0][1].IsNull() || !rows[0][2].IsNull() {
		t.Errorf("empty aggregates: %v", rows[0])
	}
}

func TestJoins(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE a (k INTEGER, v VARCHAR(5))")
	mustExec(t, e, "CREATE TABLE b (k INTEGER, w VARCHAR(5))")
	mustExec(t, e, "INSERT INTO a VALUES (1, 'a1'), (2, 'a2'), (3, 'a3')")
	mustExec(t, e, "INSERT INTO b VALUES (2, 'b2'), (3, 'b3'), (3, 'b3x')")
	rows := q(t, e, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k ORDER BY a.v, b.w")
	if len(rows) != 3 {
		t.Fatalf("inner join rows = %d", len(rows))
	}
	rows = q(t, e, "SELECT a.v, b.w FROM a LEFT JOIN b ON a.k = b.k ORDER BY a.v, b.w")
	if len(rows) != 4 {
		t.Fatalf("left join rows = %d", len(rows))
	}
	if !rows[0][1].IsNull() { // a1 has no match; sorts first since NULL smallest
		t.Errorf("left join null side: %v", rows[0])
	}
	rows = q(t, e, "SELECT count(*) FROM a CROSS JOIN b")
	if rows[0][0].I != 9 {
		t.Errorf("cross join count = %v", rows[0][0])
	}
	rows = q(t, e, "SELECT count(*) FROM a, b WHERE a.k = b.k")
	if rows[0][0].I != 3 {
		t.Errorf("comma join count = %v", rows[0][0])
	}
}

func TestSubqueries(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE a (k INTEGER, v INTEGER)")
	mustExec(t, e, "INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)")
	rows := q(t, e, "SELECT k FROM a WHERE v = (SELECT max(v) FROM a)")
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Errorf("scalar subquery: %v", rows)
	}
	rows = q(t, e, "SELECT k FROM a WHERE k IN (SELECT k FROM a WHERE v > 15) ORDER BY k")
	if len(rows) != 2 {
		t.Errorf("IN subquery: %v", rows)
	}
	// correlated EXISTS
	mustExec(t, e, "CREATE TABLE b (k INTEGER)")
	mustExec(t, e, "INSERT INTO b VALUES (2)")
	rows = q(t, e, "SELECT k FROM a WHERE EXISTS (SELECT 1 FROM b WHERE b.k = a.k)")
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Errorf("correlated exists: %v", rows)
	}
	// derived table
	rows = q(t, e, "SELECT d.m FROM (SELECT max(v) AS m FROM a) d")
	if len(rows) != 1 || rows[0][0].I != 30 {
		t.Errorf("derived table: %v", rows)
	}
	// scalar subquery with >1 row errors
	if _, err := e.ExecSQL("SELECT (SELECT k FROM a) FROM a"); err == nil {
		t.Error("multi-row scalar subquery accepted")
	}
}

func TestOrderByLimitNulls(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (k INTEGER)")
	mustExec(t, e, "INSERT INTO t VALUES (3), (NULL), (1), (2)")
	rows := q(t, e, "SELECT k FROM t ORDER BY k LIMIT 2")
	if !rows[0][0].IsNull() || rows[1][0].I != 1 {
		t.Errorf("nulls-first ordering: %v", rows)
	}
	rows = q(t, e, "SELECT k FROM t ORDER BY k DESC LIMIT 1")
	if rows[0][0].I != 3 {
		t.Errorf("desc: %v", rows)
	}
}

func TestLikeAndCase(t *testing.T) {
	e := newTestEngine(t)
	rows := q(t, e, `SELECT 'hello' LIKE 'he%', 'hello' LIKE 'h_llo', 'hello' NOT LIKE 'x%',
		CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END, CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END`)
	r := rows[0]
	if !r[0].Bool || !r[1].Bool || !r[2].Bool {
		t.Errorf("like: %v", r[:3])
	}
	if r[3].S != "b" || r[4].S != "two" {
		t.Errorf("case: %v %v", r[3], r[4])
	}
}

func TestDateFunctions(t *testing.T) {
	e := newTestEngine(t)
	rows := q(t, e, `SELECT to_date('2012-01-31', 'YYYY-MM-DD'),
		to_char(to_date('2012-01-31', 'YYYY-MM-DD'), 'DD/MM/YYYY'),
		to_date('2012-01-31', 'YYYY-MM-DD') + 1,
		add_months(to_date('2020-01-31', 'YYYY-MM-DD'), 1),
		year(to_date('2012-06-15', 'YYYY-MM-DD'))`)
	r := rows[0]
	if r[0].Render() != "2012-01-31" {
		t.Errorf("to_date: %v", r[0].Render())
	}
	if r[1].S != "31/01/2012" {
		t.Errorf("to_char: %v", r[1].S)
	}
	if r[2].Render() != "2012-02-01" {
		t.Errorf("date+1: %v", r[2].Render())
	}
	if r[3].Render() != "2020-03-02" { // Go AddDate normalization of Jan 31 + 1 month
		t.Errorf("add_months: %v", r[3].Render())
	}
	if r[4].I != 2012 {
		t.Errorf("year: %v", r[4])
	}
	if _, err := e.ExecSQL("SELECT to_date('xxxx', 'YYYY-MM-DD')"); err == nil {
		t.Error("bad to_date accepted")
	}
	if AsError(func() error { _, err := e.ExecSQL("SELECT to_date('2023-02-30', 'YYYY-MM-DD')"); return err }()).Code != CodeDateConv {
		t.Error("invalid calendar date should raise CodeDateConv")
	}
}

func TestCurrentDateUsesClock(t *testing.T) {
	e := newTestEngine(t)
	rows := q(t, e, "SELECT current_date()")
	if rows[0][0].Render() != "2023-03-28" {
		t.Errorf("current_date = %v", rows[0][0].Render())
	}
}

func TestDivisionByZero(t *testing.T) {
	e := newTestEngine(t)
	for _, src := range []string{"SELECT 1 / 0", "SELECT 1.0 / 0", "SELECT 1 % 0"} {
		_, err := e.ExecSQL(src)
		if AsError(err) == nil || AsError(err).Code != CodeDivByZero {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	e := newTestEngine(t)
	rows := q(t, e, `SELECT substring('hello world', 7), substr('hello', 2, 3),
		replace('a-b-c', '-', '+'), lpad('5', 3, '0'), rpad('ab', 5, 'xy'),
		length('abc'), position('lo', 'l')`)
	r := rows[0]
	wants := []string{"world", "ell", "a+b+c", "005", "abxyx"}
	for i, w := range wants {
		if r[i].S != w {
			t.Errorf("col %d = %q, want %q", i, r[i].S, w)
		}
	}
	if r[5].I != 3 || r[6].I != 1 {
		t.Errorf("length/position: %v %v", r[5], r[6])
	}
}

func TestCopyFromStore(t *testing.T) {
	store := cloudstore.NewMemStore()
	e := NewEngine(store, Options{})
	mustExec(t, e, "CREATE TABLE stage (seq BIGINT, id VARCHAR(5), name VARCHAR(50))")
	put := func(key, body string) {
		if err := store.Put(key, strings.NewReader(body)); err != nil {
			t.Fatal(err)
		}
	}
	put("job1/part-000.csv", "1,123,Smith\n2,456,\\N\n")
	put("job1/part-001.csv", "3,789,Brown\n")
	put("other/x.csv", "9,zzz,Ignored\n")
	res := mustExec(t, e, "COPY INTO stage FROM 'store://job1/'")
	if res.Activity != 3 {
		t.Fatalf("copied %d", res.Activity)
	}
	rows := q(t, e, "SELECT seq, id, name FROM stage ORDER BY seq")
	if rows[0][1].S != "123" || !rows[1][2].IsNull() || rows[2][1].S != "789" {
		t.Errorf("rows = %v", rows)
	}
}

func TestCopyFilesManifest(t *testing.T) {
	store := cloudstore.NewMemStore()
	e := NewEngine(store, Options{})
	mustExec(t, e, "CREATE TABLE stage (seq BIGINT, v VARCHAR(5))")
	put := func(key, body string) {
		if err := store.Put(key, strings.NewReader(body)); err != nil {
			t.Fatal(err)
		}
	}
	put("job1/a.csv", "1,aa\n2,bb\n")
	put("job1/b.csv", "3,cc\n")
	put("job1/straggler.csv", "4,dd\n")
	// Manifest COPY ingests exactly the named files, not the whole prefix.
	res := mustExec(t, e, "COPY INTO stage FROM 'store://job1/' FILES ('a.csv', 'b.csv')")
	if res.Activity != 3 {
		t.Fatalf("copied %d, want 3", res.Activity)
	}
	if n := q(t, e, "SELECT count(*) FROM stage")[0][0].I; n != 3 {
		t.Errorf("staged %d rows, straggler leaked in", n)
	}
	// A missing manifest entry fails the whole statement atomically.
	if _, err := e.ExecSQL("COPY INTO stage FROM 'store://job1/' FILES ('nope.csv')"); err == nil {
		t.Error("missing manifest file accepted")
	}
	if n := q(t, e, "SELECT count(*) FROM stage")[0][0].I; n != 3 {
		t.Errorf("failed manifest COPY changed the table: %d rows", n)
	}
}

func TestCopyManifestMixedCompression(t *testing.T) {
	// A manifest may mix plain and gzipped objects; the .gz suffix selects
	// decompression per file, without the statement-level gzip option.
	store := cloudstore.NewMemStore()
	e := NewEngine(store, Options{})
	mustExec(t, e, "CREATE TABLE stage (a BIGINT)")
	store.Put("m/plain.csv", strings.NewReader("1\n"))
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("2\n3\n"))
	zw.Close()
	store.Put("m/zipped.csv.gz", bytes.NewReader(buf.Bytes()))
	res := mustExec(t, e, "COPY INTO stage FROM 'store://m/' FILES ('plain.csv', 'zipped.csv.gz')")
	if res.Activity != 3 {
		t.Errorf("copied %d, want 3", res.Activity)
	}
}

func TestCopyIncrementalOrderMatchesMonolithic(t *testing.T) {
	// Ordered incremental manifest COPYs must land the exact physical row
	// order one monolithic ordered COPY of the same objects would — the
	// invariant order-sensitive legacy DML (last image wins) depends on.
	files := map[string]string{
		"a.csv": "5,e\n6,f\n",
		"b.csv": "1,a\n2,b\n",
		"c.csv": "3,c\n9,i\n",
		"d.csv": "4,d\n7,g\n8,h\n",
	}
	load := func(batches [][]string) []string {
		store := cloudstore.NewMemStore()
		e := NewEngine(store, Options{})
		mustExec(t, e, "CREATE TABLE stage (seq BIGINT, v VARCHAR(5))")
		for name, body := range files {
			if err := store.Put("j/"+name, strings.NewReader(body)); err != nil {
				t.Fatal(err)
			}
		}
		for _, manifest := range batches {
			stmt := "COPY INTO stage FROM 'store://j/'"
			if manifest != nil {
				stmt += " FILES ('" + strings.Join(manifest, "', '") + "')"
			}
			stmt += " OPTIONS (order 'seq')"
			mustExec(t, e, stmt)
		}
		// Read back in physical order (no ORDER BY).
		rows := q(t, e, "SELECT seq, v FROM stage")
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%d=%s", r[0].I, r[1].S)
		}
		return out
	}
	mono := load([][]string{nil})
	incr := load([][]string{{"a.csv", "b.csv"}, {"c.csv"}, {"d.csv"}})
	if strings.Join(mono, ",") != strings.Join(incr, ",") {
		t.Errorf("incremental order diverged:\n mono %v\n incr %v", mono, incr)
	}
	if len(mono) != 9 || mono[0] != "1=a" || mono[8] != "9=i" {
		t.Errorf("monolithic order wrong: %v", mono)
	}
}

func TestCopyGzip(t *testing.T) {
	store := cloudstore.NewMemStore()
	e := NewEngine(store, Options{})
	mustExec(t, e, "CREATE TABLE stage (a BIGINT)")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("1\n2\n3\n"))
	zw.Close()
	store.Put("z/part-000.csv.gz", bytes.NewReader(buf.Bytes()))
	res := mustExec(t, e, "COPY INTO stage FROM 'store://z/' OPTIONS (gzip 'true')")
	if res.Activity != 3 {
		t.Errorf("copied %d", res.Activity)
	}
}

func TestCopyErrors(t *testing.T) {
	store := cloudstore.NewMemStore()
	e := NewEngine(store, Options{})
	mustExec(t, e, "CREATE TABLE stage (a BIGINT)")
	store.Put("bad/x.csv", strings.NewReader("1\nnotanumber\n"))
	if _, err := e.ExecSQL("COPY INTO stage FROM 'store://bad/'"); err == nil {
		t.Error("bad CSV value accepted")
	}
	// atomic: nothing loaded
	if n := q(t, e, "SELECT count(*) FROM stage")[0][0].I; n != 0 {
		t.Errorf("partial copy: %d", n)
	}
	store.Put("arity/x.csv", strings.NewReader("1,2\n"))
	if _, err := e.ExecSQL("COPY INTO stage FROM 'store://arity/'"); err == nil {
		t.Error("arity mismatch accepted")
	}
	e2 := NewEngine(nil, Options{})
	e2.ExecSQL("CREATE TABLE stage (a BIGINT)")
	if _, err := e2.ExecSQL("COPY INTO stage FROM 'store://x/'"); err == nil {
		t.Error("COPY with no store accepted")
	}
}

func TestResultColumnMetadata(t *testing.T) {
	e := newTestEngine(t)
	seedCustomers(t, e)
	res := mustExec(t, e, "SELECT cust_id, cust_name AS who, count(*) AS n FROM prod.customer GROUP BY cust_id, cust_name")
	if res.Columns[0].Name != "cust_id" || res.Columns[1].Name != "who" || res.Columns[2].Name != "n" {
		t.Errorf("columns: %+v", res.Columns)
	}
	if res.Columns[0].Type.Kind != KString || res.Columns[0].Type.Length != 5 {
		t.Errorf("declared type lost: %+v", res.Columns[0].Type)
	}
	if res.Columns[2].Type.Kind != KInt {
		t.Errorf("count type: %+v", res.Columns[2].Type)
	}
}

func TestStatementOverheadSimulation(t *testing.T) {
	e := NewEngine(nil, Options{StmtOverhead: 30 * time.Millisecond})
	start := time.Now()
	e.ExecSQL("CREATE TABLE t (a INTEGER)")
	if time.Since(start) < 25*time.Millisecond {
		t.Error("statement overhead not applied")
	}
	if e.StmtCount() != 1 {
		t.Errorf("stmt count %d", e.StmtCount())
	}
}

func TestUnionAll(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE a (k INTEGER, v VARCHAR(5))")
	mustExec(t, e, "CREATE TABLE b (k INTEGER, v VARCHAR(5))")
	mustExec(t, e, "INSERT INTO a VALUES (1, 'a1'), (3, 'a3')")
	mustExec(t, e, "INSERT INTO b VALUES (2, 'b2'), (4, 'b4')")
	rows := q(t, e, "SELECT k, v FROM a UNION ALL SELECT k, v FROM b ORDER BY k")
	if len(rows) != 4 {
		t.Fatalf("rows: %v", rows)
	}
	for i, want := range []int64{1, 2, 3, 4} {
		if rows[i][0].I != want {
			t.Errorf("row %d: %v", i, rows[i])
		}
	}
	// duplicates are kept (ALL semantics)
	rows = q(t, e, "SELECT k FROM a UNION ALL SELECT k FROM a")
	if len(rows) != 4 {
		t.Errorf("union all dedup happened: %d rows", len(rows))
	}
	// three branches + limit
	rows = q(t, e, "SELECT k FROM a UNION ALL SELECT k FROM b UNION ALL SELECT k FROM a ORDER BY k DESC LIMIT 3")
	if len(rows) != 3 || rows[0][0].I != 4 {
		t.Errorf("3-branch union: %v", rows)
	}
	// derived table over a union
	rows = q(t, e, "SELECT count(*) FROM (SELECT k FROM a UNION ALL SELECT k FROM b) u")
	if rows[0][0].I != 4 {
		t.Errorf("union in subquery: %v", rows)
	}
	// arity mismatch
	if _, err := e.ExecSQL("SELECT k FROM a UNION ALL SELECT k, v FROM b"); err == nil {
		t.Error("arity mismatch accepted")
	}
	// UNION without ALL unsupported
	if _, err := e.ExecSQL("SELECT k FROM a UNION SELECT k FROM b"); err == nil {
		t.Error("bare UNION accepted")
	}
	// interior ORDER BY rejected
	if _, err := e.ExecSQL("SELECT k FROM a ORDER BY k UNION ALL SELECT k FROM b"); err == nil {
		t.Error("interior ORDER BY accepted")
	}
}

func TestOrderByOrdinal(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (a INTEGER, b VARCHAR(5))")
	mustExec(t, e, "INSERT INTO t VALUES (2, 'x'), (1, 'z'), (3, 'y')")
	rows := q(t, e, "SELECT b, a FROM t ORDER BY 2")
	if rows[0][1].I != 1 || rows[2][1].I != 3 {
		t.Errorf("ordinal order: %v", rows)
	}
	rows = q(t, e, "SELECT a FROM t ORDER BY 1 DESC")
	if rows[0][0].I != 3 {
		t.Errorf("ordinal desc: %v", rows)
	}
	// ordinal across a union
	rows = q(t, e, "SELECT a FROM t UNION ALL SELECT a FROM t ORDER BY 1")
	if rows[0][0].I != 1 || rows[5][0].I != 3 {
		t.Errorf("union ordinal: %v", rows)
	}
}
