package cdw

import (
	"fmt"
	"strings"
	"sync"

	"etlvirt/internal/sqlparse"
)

// ColType is a resolved CDW column type.
type ColType struct {
	Kind      DKind
	Length    int  // string/bytes max length; 0 = unbounded
	Precision int  // decimal
	Scale     int  // decimal
	National  bool // NVARCHAR/NCHAR
}

// String renders the CDW DDL spelling.
func (t ColType) String() string {
	switch t.Kind {
	case KString:
		name := "VARCHAR"
		if t.National {
			name = "NVARCHAR"
		}
		if t.Length > 0 {
			return fmt.Sprintf("%s(%d)", name, t.Length)
		}
		return name
	case KDecimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Precision, t.Scale)
	case KBytes:
		if t.Length > 0 {
			return fmt.Sprintf("VARBINARY(%d)", t.Length)
		}
		return "VARBINARY"
	default:
		return t.Kind.String()
	}
}

// ResolveType maps a parsed CDW type name to a ColType.
func ResolveType(tn sqlparse.TypeName) (ColType, error) {
	arg := func(i, def int) int {
		if i < len(tn.Args) {
			return tn.Args[i]
		}
		return def
	}
	switch tn.Name {
	case "BOOLEAN", "BOOL":
		return ColType{Kind: KBool}, nil
	case "SMALLINT", "INT", "INTEGER", "BIGINT", "TINYINT":
		return ColType{Kind: KInt}, nil
	case "FLOAT", "DOUBLE", "REAL":
		return ColType{Kind: KFloat}, nil
	case "DECIMAL", "NUMERIC":
		p, s := arg(0, 18), arg(1, 0)
		if p < 1 || p > 18 || s < 0 || s > p {
			return ColType{}, fmt.Errorf("cdw: invalid DECIMAL(%d,%d)", p, s)
		}
		return ColType{Kind: KDecimal, Precision: p, Scale: s}, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return ColType{Kind: KString, Length: arg(0, 0)}, nil
	case "NVARCHAR", "NCHAR":
		return ColType{Kind: KString, Length: arg(0, 0), National: true}, nil
	case "DATE":
		return ColType{Kind: KDate}, nil
	case "TIME":
		return ColType{Kind: KTime}, nil
	case "TIMESTAMP", "DATETIME":
		return ColType{Kind: KTimestamp}, nil
	case "VARBINARY", "BINARY", "BLOB":
		return ColType{Kind: KBytes, Length: arg(0, 0)}, nil
	default:
		return ColType{}, fmt.Errorf("cdw: unknown type %q", tn.Name)
	}
}

// Column is one column of a table.
type Column struct {
	Name    string
	Type    ColType
	NotNull bool
	Default sqlparse.Expr // nil when absent
}

// Table is a heap of rows plus metadata. The engine locks at table
// granularity; DML takes the write lock, scans take the read lock.
type Table struct {
	Name    sqlparse.TableName
	Columns []Column
	// PrimaryKey holds column indexes of the declared primary key. The CDW
	// does NOT enforce it (see Engine.Options.EnforceUniqueness) — the
	// virtualizer emulates enforcement, per the paper.
	PrimaryKey []int
	Unique     [][]int

	mu   sync.RWMutex
	rows [][]Datum
}

// ColIndex returns the index of the named column (case-insensitive) or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// RowCount returns the number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// snapshotRows returns a shallow copy of the row slice for scanning.
func (t *Table) snapshotRows() [][]Datum {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([][]Datum, len(t.rows))
	copy(out, t.rows)
	return out
}

// Catalog maps names to tables. The default schema is used for unqualified
// names.
type Catalog struct {
	mu            sync.RWMutex
	tables        map[string]*Table
	DefaultSchema string
}

// NewCatalog returns an empty catalog with default schema "public".
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table), DefaultSchema: "public"}
}

func (c *Catalog) key(tn sqlparse.TableName) string {
	schema := tn.Schema
	if schema == "" {
		schema = c.DefaultSchema
	}
	return strings.ToLower(schema) + "." + strings.ToLower(tn.Name)
}

// Lookup finds a table, or returns an engine error with the legacy-style
// "object does not exist" code.
func (c *Catalog) Lookup(tn sqlparse.TableName) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[c.key(tn)]
	if !ok {
		return nil, &Error{Code: CodeNoSuchObject, Msg: fmt.Sprintf("table %s does not exist", tn)}
	}
	return t, nil
}

// Create adds a table. With ifNotExists, creating an existing table is a
// no-op.
func (c *Catalog) Create(t *Table, ifNotExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(t.Name)
	if _, ok := c.tables[k]; ok {
		if ifNotExists {
			return nil
		}
		return &Error{Code: CodeObjectExists, Msg: fmt.Sprintf("table %s already exists", t.Name)}
	}
	c.tables[k] = t
	return nil
}

// Drop removes a table. With ifExists, dropping a missing table is a no-op.
func (c *Catalog) Drop(tn sqlparse.TableName, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.key(tn)
	if _, ok := c.tables[k]; !ok {
		if ifExists {
			return nil
		}
		return &Error{Code: CodeNoSuchObject, Msg: fmt.Sprintf("table %s does not exist", tn)}
	}
	delete(c.tables, k)
	return nil
}

// Names returns all table names (diagnostics).
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for k := range c.tables {
		out = append(out, k)
	}
	return out
}
