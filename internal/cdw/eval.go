package cdw

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"

	"etlvirt/internal/sqlparse"
)

// frameCol identifies one column visible during evaluation.
type frameCol struct {
	qual string // lower-cased table alias or name; "" for computed columns
	name string // lower-cased column name
}

// frame is the variable scope for expression evaluation: a set of named
// columns bound to the current row, with an optional parent scope for
// correlated subqueries.
type frame struct {
	cols   []frameCol
	row    []Datum
	parent *frame
}

func (f *frame) lookup(qual, name string) (Datum, bool, error) {
	qual = strings.ToLower(qual)
	name = strings.ToLower(name)
	for fr := f; fr != nil; fr = fr.parent {
		found := -1
		for i, c := range fr.cols {
			if c.name != name {
				continue
			}
			if qual != "" && c.qual != qual {
				continue
			}
			if found >= 0 {
				return Datum{}, false, errf(CodeNoSuchColumn, "ambiguous column reference %s", name)
			}
			found = i
		}
		if found >= 0 {
			return fr.row[found], true, nil
		}
	}
	return Datum{}, false, nil
}

// evalCtx carries evaluation state: the engine (for subqueries), the current
// scope, and aggregate values precomputed by the SELECT executor.
type evalCtx struct {
	eng *Engine
	agg map[sqlparse.Expr]Datum // aggregate call -> value for current group
}

func (e *Engine) eval(ctx *evalCtx, x sqlparse.Expr, f *frame) (Datum, error) {
	switch v := x.(type) {
	case *sqlparse.Literal:
		return literalDatum(v)

	case *sqlparse.ColRef:
		d, ok, err := f.lookup(v.Qualifier, v.Name)
		if err != nil {
			return Datum{}, err
		}
		if !ok {
			return Datum{}, errf(CodeNoSuchColumn, "column %s does not exist", refName(v))
		}
		return d, nil

	case *sqlparse.Placeholder:
		return Datum{}, errf(CodeSyntax, "unbound placeholder :%s", v.Name)

	case *sqlparse.UnaryExpr:
		return e.evalUnary(ctx, v, f)

	case *sqlparse.BinaryExpr:
		return e.evalBinary(ctx, v, f)

	case *sqlparse.FuncCall:
		if isAggregate(v.Name) {
			if ctx.agg != nil {
				if d, ok := ctx.agg[x]; ok {
					return d, nil
				}
			}
			return Datum{}, errf(CodeSyntax, "aggregate %s not allowed here", v.Name)
		}
		return e.evalFunc(ctx, v, f)

	case *sqlparse.CastExpr:
		if v.Format != "" {
			return Datum{}, errf(CodeUnsupported, "FORMAT cast reached the CDW engine")
		}
		d, err := e.eval(ctx, v.X, f)
		if err != nil {
			return Datum{}, err
		}
		ct, err := ResolveType(v.Type)
		if err != nil {
			return Datum{}, err
		}
		return castDatum(d, ct)

	case *sqlparse.CaseExpr:
		return e.evalCase(ctx, v, f)

	case *sqlparse.IsNullExpr:
		d, err := e.eval(ctx, v.X, f)
		if err != nil {
			return Datum{}, err
		}
		return BoolD(d.IsNull() != v.Not), nil

	case *sqlparse.InExpr:
		return e.evalIn(ctx, v, f)

	case *sqlparse.BetweenExpr:
		d, err := e.eval(ctx, v.X, f)
		if err != nil {
			return Datum{}, err
		}
		lo, err := e.eval(ctx, v.Lo, f)
		if err != nil {
			return Datum{}, err
		}
		hi, err := e.eval(ctx, v.Hi, f)
		if err != nil {
			return Datum{}, err
		}
		if d.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null(), nil
		}
		c1, err := Compare(d, lo)
		if err != nil {
			return Datum{}, AsError(err)
		}
		c2, err := Compare(d, hi)
		if err != nil {
			return Datum{}, AsError(err)
		}
		in := c1 >= 0 && c2 <= 0
		return BoolD(in != v.Not), nil

	case *sqlparse.LikeExpr:
		d, err := e.eval(ctx, v.X, f)
		if err != nil {
			return Datum{}, err
		}
		p, err := e.eval(ctx, v.Pattern, f)
		if err != nil {
			return Datum{}, err
		}
		if d.IsNull() || p.IsNull() {
			return Null(), nil
		}
		if d.Kind != KString || p.Kind != KString {
			return Datum{}, errf(CodeTypeMismatch, "LIKE requires strings, got %s and %s", d.Kind, p.Kind)
		}
		re, err := likeRegexp(p.S)
		if err != nil {
			return Datum{}, err
		}
		return BoolD(re.MatchString(d.S) != v.Not), nil

	case *sqlparse.ExistsExpr:
		rows, _, err := e.execSelect(v.Sub, f, 1)
		if err != nil {
			return Datum{}, err
		}
		return BoolD((len(rows) > 0) != v.Not), nil

	case *sqlparse.SubqueryExpr:
		rows, _, err := e.execSelect(v.Sub, f, 2)
		if err != nil {
			return Datum{}, err
		}
		if len(rows) == 0 {
			return Null(), nil
		}
		if len(rows) > 1 {
			return Datum{}, errf(CodeSyntax, "scalar subquery returned more than one row")
		}
		if len(rows[0]) != 1 {
			return Datum{}, errf(CodeSyntax, "scalar subquery must return one column")
		}
		return rows[0][0], nil

	case *sqlparse.Star:
		return Datum{}, errf(CodeSyntax, "* not allowed in this context")

	default:
		return Datum{}, errf(CodeUnsupported, "unsupported expression %T", x)
	}
}

func refName(v *sqlparse.ColRef) string {
	if v.Qualifier != "" {
		return v.Qualifier + "." + v.Name
	}
	return v.Name
}

func literalDatum(v *sqlparse.Literal) (Datum, error) {
	switch v.Kind {
	case sqlparse.LitNull:
		return Null(), nil
	case sqlparse.LitInt:
		return IntD(v.Int), nil
	case sqlparse.LitFloat:
		return FloatD(v.Float), nil
	case sqlparse.LitString:
		return StringD(v.Str), nil
	case sqlparse.LitBool:
		return BoolD(v.Bool), nil
	case sqlparse.LitDate:
		d, err := parseDateString(v.Str)
		if err != nil {
			return Datum{}, err
		}
		return d, nil
	default:
		return Datum{}, errf(CodeSyntax, "bad literal kind %d", v.Kind)
	}
}

func parseDateString(s string) (Datum, error) {
	t, err := time.ParseInLocation("2006-01-02", strings.TrimSpace(s), time.UTC)
	if err != nil {
		return Datum{}, errf(CodeDateConv, "invalid date %q", s)
	}
	return Datum{Kind: KDate, I: t.Unix() / 86400}, nil
}

func (e *Engine) evalUnary(ctx *evalCtx, v *sqlparse.UnaryExpr, f *frame) (Datum, error) {
	d, err := e.eval(ctx, v.X, f)
	if err != nil {
		return Datum{}, err
	}
	if d.IsNull() {
		return Null(), nil
	}
	switch v.Op {
	case "NOT":
		if d.Kind != KBool {
			return Datum{}, errf(CodeTypeMismatch, "NOT requires a boolean, got %s", d.Kind)
		}
		return BoolD(!d.Bool), nil
	case "-":
		switch d.Kind {
		case KInt:
			return IntD(-d.I), nil
		case KFloat:
			return FloatD(-d.F), nil
		case KDecimal:
			return DecimalD(-d.I, int(d.Scale)), nil
		}
		return Datum{}, errf(CodeTypeMismatch, "unary - requires a number, got %s", d.Kind)
	case "+":
		if !d.Kind.isNumeric() {
			return Datum{}, errf(CodeTypeMismatch, "unary + requires a number, got %s", d.Kind)
		}
		return d, nil
	default:
		return Datum{}, errf(CodeSyntax, "unknown unary operator %q", v.Op)
	}
}

func (e *Engine) evalBinary(ctx *evalCtx, v *sqlparse.BinaryExpr, f *frame) (Datum, error) {
	// AND/OR need three-valued logic with short-circuit.
	if v.Op == "AND" || v.Op == "OR" {
		l, err := e.eval(ctx, v.L, f)
		if err != nil {
			return Datum{}, err
		}
		if !l.IsNull() && l.Kind != KBool {
			return Datum{}, errf(CodeTypeMismatch, "%s requires booleans", v.Op)
		}
		if v.Op == "AND" && !l.IsNull() && !l.Bool {
			return BoolD(false), nil
		}
		if v.Op == "OR" && !l.IsNull() && l.Bool {
			return BoolD(true), nil
		}
		r, err := e.eval(ctx, v.R, f)
		if err != nil {
			return Datum{}, err
		}
		if !r.IsNull() && r.Kind != KBool {
			return Datum{}, errf(CodeTypeMismatch, "%s requires booleans", v.Op)
		}
		switch v.Op {
		case "AND":
			if !r.IsNull() && !r.Bool {
				return BoolD(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return Null(), nil
			}
			return BoolD(true), nil
		default: // OR
			if !r.IsNull() && r.Bool {
				return BoolD(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return Null(), nil
			}
			return BoolD(false), nil
		}
	}

	l, err := e.eval(ctx, v.L, f)
	if err != nil {
		return Datum{}, err
	}
	r, err := e.eval(ctx, v.R, f)
	if err != nil {
		return Datum{}, err
	}
	switch v.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c, err := Compare(l, r)
		if err != nil {
			return Datum{}, AsError(err)
		}
		var out bool
		switch v.Op {
		case "=":
			out = c == 0
		case "<>":
			out = c != 0
		case "<":
			out = c < 0
		case "<=":
			out = c <= 0
		case ">":
			out = c > 0
		case ">=":
			out = c >= 0
		}
		return BoolD(out), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return StringD(l.Render() + r.Render()), nil
	case "+", "-", "*", "/", "%", "**":
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return arith(v.Op, l, r)
	default:
		return Datum{}, errf(CodeSyntax, "unknown operator %q", v.Op)
	}
}

func arith(op string, l, r Datum) (Datum, error) {
	// date arithmetic: date +/- int days, date - date
	if l.Kind == KDate && r.Kind == KInt && (op == "+" || op == "-") {
		if op == "+" {
			return Datum{Kind: KDate, I: l.I + r.I}, nil
		}
		return Datum{Kind: KDate, I: l.I - r.I}, nil
	}
	if l.Kind == KDate && r.Kind == KDate && op == "-" {
		return IntD(l.I - r.I), nil
	}
	if !l.Kind.isNumeric() || !r.Kind.isNumeric() {
		return Datum{}, errf(CodeTypeMismatch, "cannot apply %s to %s and %s", op, l.Kind, r.Kind)
	}
	// pure integer arithmetic stays integral
	if l.Kind == KInt && r.Kind == KInt && op != "**" {
		switch op {
		case "+":
			return IntD(l.I + r.I), nil
		case "-":
			return IntD(l.I - r.I), nil
		case "*":
			return IntD(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return Datum{}, errf(CodeDivByZero, "division by zero")
			}
			return IntD(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return Datum{}, errf(CodeDivByZero, "division by zero")
			}
			return IntD(l.I % r.I), nil
		}
	}
	// same-scale decimal addition/subtraction stays exact
	if l.Kind == KDecimal && r.Kind == KDecimal && l.Scale == r.Scale && (op == "+" || op == "-") {
		if op == "+" {
			return DecimalD(l.I+r.I, int(l.Scale)), nil
		}
		return DecimalD(l.I-r.I, int(l.Scale)), nil
	}
	lf, rf := l.asFloat(), r.asFloat()
	switch op {
	case "+":
		return FloatD(lf + rf), nil
	case "-":
		return FloatD(lf - rf), nil
	case "*":
		return FloatD(lf * rf), nil
	case "/":
		if rf == 0 {
			return Datum{}, errf(CodeDivByZero, "division by zero")
		}
		return FloatD(lf / rf), nil
	case "%":
		if rf == 0 {
			return Datum{}, errf(CodeDivByZero, "division by zero")
		}
		return FloatD(math.Mod(lf, rf)), nil
	case "**":
		return FloatD(math.Pow(lf, rf)), nil
	}
	return Datum{}, errf(CodeSyntax, "unknown arithmetic operator %q", op)
}

func (e *Engine) evalCase(ctx *evalCtx, v *sqlparse.CaseExpr, f *frame) (Datum, error) {
	var operand Datum
	var err error
	if v.Operand != nil {
		operand, err = e.eval(ctx, v.Operand, f)
		if err != nil {
			return Datum{}, err
		}
	}
	for _, w := range v.Whens {
		cond, err := e.eval(ctx, w.Cond, f)
		if err != nil {
			return Datum{}, err
		}
		match := false
		if v.Operand != nil {
			if !operand.IsNull() && !cond.IsNull() {
				c, err := Compare(operand, cond)
				if err != nil {
					return Datum{}, AsError(err)
				}
				match = c == 0
			}
		} else {
			match = !cond.IsNull() && cond.Kind == KBool && cond.Bool
		}
		if match {
			return e.eval(ctx, w.Then, f)
		}
	}
	if v.Else != nil {
		return e.eval(ctx, v.Else, f)
	}
	return Null(), nil
}

func (e *Engine) evalIn(ctx *evalCtx, v *sqlparse.InExpr, f *frame) (Datum, error) {
	d, err := e.eval(ctx, v.X, f)
	if err != nil {
		return Datum{}, err
	}
	var items []Datum
	if v.Sub != nil {
		rows, _, err := e.execSelect(v.Sub, f, 0)
		if err != nil {
			return Datum{}, err
		}
		for _, row := range rows {
			if len(row) != 1 {
				return Datum{}, errf(CodeSyntax, "IN subquery must return one column")
			}
			items = append(items, row[0])
		}
	} else {
		for _, le := range v.List {
			it, err := e.eval(ctx, le, f)
			if err != nil {
				return Datum{}, err
			}
			items = append(items, it)
		}
	}
	if d.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, it := range items {
		if it.IsNull() {
			sawNull = true
			continue
		}
		c, err := Compare(d, it)
		if err != nil {
			return Datum{}, AsError(err)
		}
		if c == 0 {
			return BoolD(!v.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return BoolD(v.Not), nil
}

// likeRegexp compiles a SQL LIKE pattern: % matches any run, _ any single
// character, backslash escapes.
func likeRegexp(pattern string) (*regexp.Regexp, error) {
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch c {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		case '\\':
			if i+1 < len(pattern) {
				i++
				sb.WriteString(regexp.QuoteMeta(string(pattern[i])))
			}
		default:
			sb.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, errf(CodeSyntax, "bad LIKE pattern %q", pattern)
	}
	return re, nil
}

// castDatum converts d to the target column type, producing legacy-coded
// engine errors on failure.
func castDatum(d Datum, t ColType) (Datum, error) {
	if d.IsNull() {
		return Null(), nil
	}
	switch t.Kind {
	case KBool:
		switch d.Kind {
		case KBool:
			return d, nil
		case KString:
			s := strings.ToLower(strings.TrimSpace(d.S))
			if s == "true" || s == "t" || s == "1" {
				return BoolD(true), nil
			}
			if s == "false" || s == "f" || s == "0" {
				return BoolD(false), nil
			}
		}
		return Datum{}, errf(CodeTypeMismatch, "cannot cast %s to BOOLEAN", d.Kind)

	case KInt:
		switch d.Kind {
		case KInt:
			return d, nil
		case KFloat:
			if math.IsNaN(d.F) || math.IsInf(d.F, 0) || d.F > math.MaxInt64 || d.F < math.MinInt64 {
				return Datum{}, errf(CodeBadNumeric, "float %v out of BIGINT range", d.F)
			}
			return IntD(int64(d.F)), nil
		case KDecimal:
			return IntD(d.I / pow10i(int(d.Scale))), nil
		case KString:
			n, err := strconv.ParseInt(strings.TrimSpace(d.S), 10, 64)
			if err != nil {
				return Datum{}, errf(CodeBadNumeric, "invalid integer %q", d.S)
			}
			return IntD(n), nil
		case KBool:
			return IntD(boolToInt(d.Bool)), nil
		}
		return Datum{}, errf(CodeTypeMismatch, "cannot cast %s to BIGINT", d.Kind)

	case KFloat:
		switch d.Kind {
		case KFloat:
			return d, nil
		case KInt, KDecimal:
			return FloatD(d.asFloat()), nil
		case KString:
			fv, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
			if err != nil {
				return Datum{}, errf(CodeBadNumeric, "invalid number %q", d.S)
			}
			return FloatD(fv), nil
		}
		return Datum{}, errf(CodeTypeMismatch, "cannot cast %s to DOUBLE", d.Kind)

	case KDecimal:
		switch d.Kind {
		case KDecimal:
			if int(d.Scale) == t.Scale {
				if overflowsPrecision(d.I, t.Precision) {
					return Datum{}, errf(CodeBadNumeric, "decimal overflows DECIMAL(%d,%d)", t.Precision, t.Scale)
				}
				return d, nil
			}
			return rescaleDecimal(d, t)
		case KInt:
			u := d.I * pow10i(t.Scale)
			if overflowsPrecision(u, t.Precision) || (d.I != 0 && u/d.I != pow10i(t.Scale)) {
				return Datum{}, errf(CodeBadNumeric, "integer overflows DECIMAL(%d,%d)", t.Precision, t.Scale)
			}
			return DecimalD(u, t.Scale), nil
		case KFloat:
			scaled := d.F * math.Pow10(t.Scale)
			if math.IsNaN(scaled) || math.Abs(scaled) >= 1e18 {
				return Datum{}, errf(CodeBadNumeric, "float overflows DECIMAL(%d,%d)", t.Precision, t.Scale)
			}
			u := int64(math.RoundToEven(scaled))
			if overflowsPrecision(u, t.Precision) {
				return Datum{}, errf(CodeBadNumeric, "float overflows DECIMAL(%d,%d)", t.Precision, t.Scale)
			}
			return DecimalD(u, t.Scale), nil
		case KString:
			u, err := parseDecimalString(strings.TrimSpace(d.S), t.Precision, t.Scale)
			if err != nil {
				return Datum{}, err
			}
			return DecimalD(u, t.Scale), nil
		}
		return Datum{}, errf(CodeTypeMismatch, "cannot cast %s to DECIMAL", d.Kind)

	case KString:
		s := d.S
		if d.Kind != KString {
			s = d.Render()
		}
		if t.Length > 0 && len(s) > t.Length {
			return Datum{}, errf(CodeStringTrunc, "string of length %d exceeds %s", len(s), t)
		}
		return StringD(s), nil

	case KDate:
		switch d.Kind {
		case KDate:
			return d, nil
		case KTimestamp:
			return Datum{Kind: KDate, I: floorDiv(d.I, 86400*1e6)}, nil
		case KString:
			return parseDateString(d.S)
		}
		return Datum{}, errf(CodeDateConv, "cannot cast %s to DATE", d.Kind)

	case KTime:
		switch d.Kind {
		case KTime:
			return d, nil
		case KString:
			var h, m, s int
			if _, err := fmt.Sscanf(strings.TrimSpace(d.S), "%d:%d:%d", &h, &m, &s); err != nil ||
				h < 0 || h > 23 || m < 0 || m > 59 || s < 0 || s > 59 {
				return Datum{}, errf(CodeDateConv, "invalid time %q", d.S)
			}
			return TimeD(int64(h*3600 + m*60 + s)), nil
		}
		return Datum{}, errf(CodeDateConv, "cannot cast %s to TIME", d.Kind)

	case KTimestamp:
		switch d.Kind {
		case KTimestamp:
			return d, nil
		case KDate:
			return TimestampD(d.I * 86400 * 1e6), nil
		case KString:
			ts, err := time.ParseInLocation("2006-01-02 15:04:05", strings.TrimSpace(d.S), time.UTC)
			if err != nil {
				return Datum{}, errf(CodeDateConv, "invalid timestamp %q", d.S)
			}
			return TimestampD(ts.UnixMicro()), nil
		}
		return Datum{}, errf(CodeDateConv, "cannot cast %s to TIMESTAMP", d.Kind)

	case KBytes:
		if d.Kind == KBytes {
			if t.Length > 0 && len(d.B) > t.Length {
				return Datum{}, errf(CodeStringTrunc, "binary of length %d exceeds %s", len(d.B), t)
			}
			return d, nil
		}
		return Datum{}, errf(CodeTypeMismatch, "cannot cast %s to VARBINARY", d.Kind)
	}
	return Datum{}, errf(CodeTypeMismatch, "unsupported cast target %s", t)
}

func rescaleDecimal(d Datum, t ColType) (Datum, error) {
	diff := t.Scale - int(d.Scale)
	u := d.I
	if diff > 0 {
		for i := 0; i < diff; i++ {
			prev := u
			u *= 10
			if u/10 != prev {
				return Datum{}, errf(CodeBadNumeric, "decimal overflows DECIMAL(%d,%d)", t.Precision, t.Scale)
			}
		}
	} else {
		div := pow10i(-diff)
		rem := u % div
		u /= div
		// round half away from zero
		if abs64(rem)*2 >= div {
			if d.I >= 0 {
				u++
			} else {
				u--
			}
		}
	}
	if overflowsPrecision(u, t.Precision) {
		return Datum{}, errf(CodeBadNumeric, "decimal overflows DECIMAL(%d,%d)", t.Precision, t.Scale)
	}
	return DecimalD(u, t.Scale), nil
}

func parseDecimalString(s string, precision, scale int) (int64, error) {
	if s == "" {
		return 0, errf(CodeBadNumeric, "empty decimal")
	}
	neg := false
	switch s[0] {
	case '-':
		neg, s = true, s[1:]
	case '+':
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return 0, errf(CodeBadNumeric, "malformed decimal %q", s)
	}
	for _, r := range intPart + fracPart {
		if r < '0' || r > '9' {
			return 0, errf(CodeBadNumeric, "malformed decimal %q", s)
		}
	}
	round := int64(0)
	if len(fracPart) > scale {
		if fracPart[scale] >= '5' {
			round = 1
		}
		fracPart = fracPart[:scale]
	}
	for len(fracPart) < scale {
		fracPart += "0"
	}
	digits := strings.TrimLeft(intPart+fracPart, "0")
	if digits == "" {
		digits = "0"
	}
	if len(digits) > 18 {
		return 0, errf(CodeBadNumeric, "decimal %q overflows", s)
	}
	u, err := strconv.ParseInt(digits, 10, 64)
	if err != nil {
		return 0, errf(CodeBadNumeric, "malformed decimal %q", s)
	}
	u += round
	if overflowsPrecision(u, precision) {
		return 0, errf(CodeBadNumeric, "decimal %q exceeds precision %d", s, precision)
	}
	if neg {
		u = -u
	}
	return u, nil
}

func overflowsPrecision(u int64, precision int) bool {
	return abs64(u) > pow10i(precision)-1
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func pow10i(n int) int64 {
	v := int64(1)
	for i := 0; i < n && i < 19; i++ {
		v *= 10
	}
	return v
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
