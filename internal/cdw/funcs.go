package cdw

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"etlvirt/internal/sqlparse"
)

// isAggregate reports whether the function name is an aggregate.
func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "MIN", "MAX", "AVG", "XOR_AGG":
		return true
	}
	return false
}

// hash64 is FNV-1a 64 over the datum's canonical group key, so equal values
// hash equally regardless of representation (DECIMAL scale, padded CHAR).
// It backs the HASH64 scalar used by the scrub layer's column checksums.
func hash64(d Datum) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range []byte(d.GroupKey()) {
		h ^= uint64(b)
		h *= prime64
	}
	return int64(h)
}

// evalFunc evaluates a scalar function call.
func (e *Engine) evalFunc(ctx *evalCtx, v *sqlparse.FuncCall, f *frame) (Datum, error) {
	args := make([]Datum, len(v.Args))
	for i, a := range v.Args {
		d, err := e.eval(ctx, a, f)
		if err != nil {
			return Datum{}, err
		}
		args[i] = d
	}
	want := func(n int) error {
		if len(args) != n {
			return errf(CodeSyntax, "%s expects %d arguments, got %d", v.Name, n, len(args))
		}
		return nil
	}
	str1 := func() (string, bool, error) {
		if err := want(1); err != nil {
			return "", false, err
		}
		if args[0].IsNull() {
			return "", true, nil
		}
		if args[0].Kind != KString {
			return args[0].Render(), false, nil
		}
		return args[0].S, false, nil
	}

	switch v.Name {
	case "TRIM":
		s, null, err := str1()
		if err != nil || null {
			return Null(), err
		}
		return StringD(strings.TrimSpace(s)), nil
	case "LTRIM":
		s, null, err := str1()
		if err != nil || null {
			return Null(), err
		}
		return StringD(strings.TrimLeft(s, " ")), nil
	case "RTRIM":
		s, null, err := str1()
		if err != nil || null {
			return Null(), err
		}
		return StringD(strings.TrimRight(s, " ")), nil
	case "UPPER":
		s, null, err := str1()
		if err != nil || null {
			return Null(), err
		}
		return StringD(strings.ToUpper(s)), nil
	case "LOWER":
		s, null, err := str1()
		if err != nil || null {
			return Null(), err
		}
		return StringD(strings.ToLower(s)), nil
	case "LENGTH", "CHAR_LENGTH", "CHARACTER_LENGTH":
		s, null, err := str1()
		if err != nil || null {
			return Null(), err
		}
		return IntD(int64(len(s))), nil
	case "REVERSE":
		s, null, err := str1()
		if err != nil || null {
			return Null(), err
		}
		b := []byte(s)
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		return StringD(string(b)), nil

	case "SUBSTRING", "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return Datum{}, errf(CodeSyntax, "%s expects 2 or 3 arguments", v.Name)
		}
		if anyNull(args) {
			return Null(), nil
		}
		s := args[0].Render()
		start, err := toInt(args[1])
		if err != nil {
			return Datum{}, err
		}
		length := int64(len(s)) + 1
		if len(args) == 3 {
			if length, err = toInt(args[2]); err != nil {
				return Datum{}, err
			}
			if length < 0 {
				length = 0
			}
		}
		// SQL substring is 1-based; positions before 1 consume length.
		if start < 1 {
			length += start - 1
			start = 1
		}
		if length <= 0 || start > int64(len(s)) {
			return StringD(""), nil
		}
		end := start - 1 + length
		if end > int64(len(s)) {
			end = int64(len(s))
		}
		return StringD(s[start-1 : end]), nil

	case "POSITION", "INSTR", "INDEX":
		if err := want(2); err != nil {
			return Datum{}, err
		}
		if anyNull(args) {
			return Null(), nil
		}
		// INDEX(haystack, needle) per legacy; POSITION takes the same order
		// here because the parser does not support the IN syntax form.
		return IntD(int64(strings.Index(args[0].Render(), args[1].Render()) + 1)), nil

	case "REPLACE", "OREPLACE":
		if err := want(3); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		old, newS := "", ""
		if !args[1].IsNull() {
			old = args[1].Render()
		}
		if !args[2].IsNull() {
			newS = args[2].Render()
		}
		if old == "" {
			return StringD(args[0].Render()), nil
		}
		return StringD(strings.ReplaceAll(args[0].Render(), old, newS)), nil

	case "LPAD", "RPAD":
		if err := want(3); err != nil {
			return Datum{}, err
		}
		if anyNull(args) {
			return Null(), nil
		}
		s := args[0].Render()
		n, err := toInt(args[1])
		if err != nil {
			return Datum{}, err
		}
		pad := args[2].Render()
		if n <= int64(len(s)) {
			return StringD(s[:n]), nil
		}
		if pad == "" {
			return StringD(s), nil
		}
		var sb strings.Builder
		for int64(sb.Len())+int64(len(s)) < n {
			sb.WriteString(pad)
		}
		padStr := sb.String()[:n-int64(len(s))]
		if v.Name == "LPAD" {
			return StringD(padStr + s), nil
		}
		return StringD(s + padStr), nil

	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return Null(), nil
			}
			sb.WriteString(a.Render())
		}
		return StringD(sb.String()), nil

	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil

	case "NULLIF":
		if err := want(2); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		if !args[1].IsNull() {
			c, err := Compare(args[0], args[1])
			if err != nil {
				return Datum{}, AsError(err)
			}
			if c == 0 {
				return Null(), nil
			}
		}
		return args[0], nil

	case "ZEROIFNULL":
		if err := want(1); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return IntD(0), nil
		}
		return args[0], nil

	case "GREATEST", "LEAST":
		if len(args) < 1 {
			return Datum{}, errf(CodeSyntax, "%s requires arguments", v.Name)
		}
		if anyNull(args) {
			return Null(), nil
		}
		best := args[0]
		for _, a := range args[1:] {
			c, err := Compare(a, best)
			if err != nil {
				return Datum{}, AsError(err)
			}
			if (v.Name == "GREATEST" && c > 0) || (v.Name == "LEAST" && c < 0) {
				best = a
			}
		}
		return best, nil

	case "ABS":
		if err := want(1); err != nil {
			return Datum{}, err
		}
		a := args[0]
		if a.IsNull() {
			return Null(), nil
		}
		switch a.Kind {
		case KInt:
			return IntD(abs64(a.I)), nil
		case KFloat:
			return FloatD(math.Abs(a.F)), nil
		case KDecimal:
			return DecimalD(abs64(a.I), int(a.Scale)), nil
		}
		return Datum{}, errf(CodeTypeMismatch, "ABS requires a number")

	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return Datum{}, errf(CodeSyntax, "ROUND expects 1 or 2 arguments")
		}
		if anyNull(args) {
			return Null(), nil
		}
		places := int64(0)
		if len(args) == 2 {
			var err error
			if places, err = toInt(args[1]); err != nil {
				return Datum{}, err
			}
		}
		scale := math.Pow10(int(places))
		return FloatD(math.Round(args[0].asFloat()*scale) / scale), nil

	case "FLOOR":
		if err := want(1); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return FloatD(math.Floor(args[0].asFloat())), nil
	case "CEIL", "CEILING":
		if err := want(1); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return FloatD(math.Ceil(args[0].asFloat())), nil
	case "SQRT":
		if err := want(1); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		x := args[0].asFloat()
		if x < 0 {
			return Datum{}, errf(CodeBadNumeric, "SQRT of negative number")
		}
		return FloatD(math.Sqrt(x)), nil
	case "MOD":
		if err := want(2); err != nil {
			return Datum{}, err
		}
		if anyNull(args) {
			return Null(), nil
		}
		return arith("%", args[0], args[1])

	case "TO_DATE":
		if err := want(2); err != nil {
			return Datum{}, err
		}
		if anyNull(args) {
			return Null(), nil
		}
		return toDate(args[0].Render(), args[1].Render())

	case "TO_TIMESTAMP":
		if err := want(2); err != nil {
			return Datum{}, err
		}
		if anyNull(args) {
			return Null(), nil
		}
		return toTimestamp(args[0].Render(), args[1].Render())

	case "TO_CHAR":
		if len(args) == 1 {
			if args[0].IsNull() {
				return Null(), nil
			}
			return StringD(args[0].Render()), nil
		}
		if err := want(2); err != nil {
			return Datum{}, err
		}
		if anyNull(args) {
			return Null(), nil
		}
		return toChar(args[0], args[1].Render())

	case "TO_NUMBER":
		if err := want(1); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		fv, err := strconv.ParseFloat(strings.TrimSpace(args[0].Render()), 64)
		if err != nil {
			return Datum{}, errf(CodeBadNumeric, "invalid number %q", args[0].Render())
		}
		return FloatD(fv), nil

	case "ADD_MONTHS":
		if err := want(2); err != nil {
			return Datum{}, err
		}
		if anyNull(args) {
			return Null(), nil
		}
		if args[0].Kind != KDate {
			return Datum{}, errf(CodeTypeMismatch, "ADD_MONTHS requires a date")
		}
		n, err := toInt(args[1])
		if err != nil {
			return Datum{}, err
		}
		y, m, d := epochDaysToCivil(args[0].I)
		t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).AddDate(0, int(n), 0)
		return DateD(t.Year(), int(t.Month()), t.Day()), nil

	case "EXTRACT_YEAR", "YEAR":
		return extractDatePart(args, want, 'y')
	case "EXTRACT_MONTH", "MONTH":
		return extractDatePart(args, want, 'm')
	case "EXTRACT_DAY", "DAY":
		return extractDatePart(args, want, 'd')

	case "CURRENT_DATE":
		now := e.now()
		return DateD(now.Year(), int(now.Month()), now.Day()), nil
	case "CURRENT_TIMESTAMP", "NOW":
		return TimestampD(e.now().UnixMicro()), nil

	case "HASH64":
		// Order-insensitive checksum primitive for the scrub layer: a
		// deterministic 64-bit hash of the value's canonical form. NULL
		// hashes to NULL so COUNT(col) still distinguishes null patterns.
		if err := want(1); err != nil {
			return Datum{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return IntD(hash64(args[0])), nil

	default:
		return Datum{}, errf(CodeUnsupported, "unknown function %s", v.Name)
	}
}

func extractDatePart(args []Datum, want func(int) error, part byte) (Datum, error) {
	if err := want(1); err != nil {
		return Datum{}, err
	}
	if args[0].IsNull() {
		return Null(), nil
	}
	var y, m, d int
	switch args[0].Kind {
	case KDate:
		y, m, d = epochDaysToCivil(args[0].I)
	case KTimestamp:
		t := time.UnixMicro(args[0].I).UTC()
		y, m, d = t.Year(), int(t.Month()), t.Day()
	default:
		return Datum{}, errf(CodeTypeMismatch, "cannot extract from %s", args[0].Kind)
	}
	switch part {
	case 'y':
		return IntD(int64(y)), nil
	case 'm':
		return IntD(int64(m)), nil
	default:
		return IntD(int64(d)), nil
	}
}

func anyNull(args []Datum) bool {
	for _, a := range args {
		if a.IsNull() {
			return true
		}
	}
	return false
}

func toInt(d Datum) (int64, error) {
	switch d.Kind {
	case KInt:
		return d.I, nil
	case KFloat:
		return int64(d.F), nil
	case KDecimal:
		return d.I / pow10i(int(d.Scale)), nil
	case KString:
		n, err := strconv.ParseInt(strings.TrimSpace(d.S), 10, 64)
		if err != nil {
			return 0, errf(CodeBadNumeric, "invalid integer %q", d.S)
		}
		return n, nil
	default:
		return 0, errf(CodeTypeMismatch, "expected an integer, got %s", d.Kind)
	}
}

// --- datetime format model (Oracle/Snowflake-style tokens) ---

// fmtToken is one element of a parsed format model.
type fmtToken struct {
	code string // "YYYY", "MM", "DD", "HH24", "MI", "SS" or "" for a literal
	lit  byte   // literal byte when code == ""
}

func parseFormatModel(model string) ([]fmtToken, error) {
	var out []fmtToken
	u := strings.ToUpper(model)
	for i := 0; i < len(u); {
		switch {
		case strings.HasPrefix(u[i:], "YYYY"):
			out = append(out, fmtToken{code: "YYYY"})
			i += 4
		case strings.HasPrefix(u[i:], "YY"):
			out = append(out, fmtToken{code: "YY"})
			i += 2
		case strings.HasPrefix(u[i:], "MM"):
			out = append(out, fmtToken{code: "MM"})
			i += 2
		case strings.HasPrefix(u[i:], "DD"):
			out = append(out, fmtToken{code: "DD"})
			i += 2
		case strings.HasPrefix(u[i:], "HH24"):
			out = append(out, fmtToken{code: "HH24"})
			i += 4
		case strings.HasPrefix(u[i:], "HH"):
			out = append(out, fmtToken{code: "HH24"})
			i += 2
		case strings.HasPrefix(u[i:], "MI"):
			out = append(out, fmtToken{code: "MI"})
			i += 2
		case strings.HasPrefix(u[i:], "SS"):
			out = append(out, fmtToken{code: "SS"})
			i += 2
		default:
			out = append(out, fmtToken{lit: model[i]})
			i++
		}
	}
	return out, nil
}

type dtParts struct {
	y, mo, d, h, mi, s int
	haveDate           bool
}

func parseByModel(s, model string) (dtParts, error) {
	toks, err := parseFormatModel(model)
	if err != nil {
		return dtParts{}, err
	}
	p := dtParts{y: 1970, mo: 1, d: 1}
	pos := 0
	readNum := func(width int) (int, error) {
		start := pos
		for pos < len(s) && pos-start < width && s[pos] >= '0' && s[pos] <= '9' {
			pos++
		}
		if pos == start {
			return 0, errf(CodeDateConv, "cannot parse %q with format %q", s, model)
		}
		n, _ := strconv.Atoi(s[start:pos])
		return n, nil
	}
	for _, t := range toks {
		if t.code == "" {
			if pos >= len(s) || s[pos] != t.lit {
				return dtParts{}, errf(CodeDateConv, "cannot parse %q with format %q", s, model)
			}
			pos++
			continue
		}
		var n int
		var err error
		switch t.code {
		case "YYYY":
			if n, err = readNum(4); err != nil {
				return dtParts{}, err
			}
			p.y, p.haveDate = n, true
		case "YY":
			if n, err = readNum(2); err != nil {
				return dtParts{}, err
			}
			p.y, p.haveDate = 2000+n, true
		case "MM":
			if n, err = readNum(2); err != nil {
				return dtParts{}, err
			}
			p.mo, p.haveDate = n, true
		case "DD":
			if n, err = readNum(2); err != nil {
				return dtParts{}, err
			}
			p.d, p.haveDate = n, true
		case "HH24":
			if n, err = readNum(2); err != nil {
				return dtParts{}, err
			}
			p.h = n
		case "MI":
			if n, err = readNum(2); err != nil {
				return dtParts{}, err
			}
			p.mi = n
		case "SS":
			if n, err = readNum(2); err != nil {
				return dtParts{}, err
			}
			p.s = n
		}
	}
	if pos != len(s) {
		return dtParts{}, errf(CodeDateConv, "trailing input parsing %q with format %q", s, model)
	}
	return p, nil
}

func (p dtParts) validate() error {
	if p.mo < 1 || p.mo > 12 || p.d < 1 {
		return errf(CodeDateConv, "invalid date component")
	}
	t := time.Date(p.y, time.Month(p.mo), p.d, 0, 0, 0, 0, time.UTC)
	if t.Year() != p.y || int(t.Month()) != p.mo || t.Day() != p.d {
		return errf(CodeDateConv, "invalid calendar date %04d-%02d-%02d", p.y, p.mo, p.d)
	}
	if p.h < 0 || p.h > 23 || p.mi < 0 || p.mi > 59 || p.s < 0 || p.s > 59 {
		return errf(CodeDateConv, "invalid time component")
	}
	return nil
}

func toDate(s, model string) (Datum, error) {
	p, err := parseByModel(strings.TrimSpace(s), model)
	if err != nil {
		return Datum{}, err
	}
	if err := p.validate(); err != nil {
		return Datum{}, err
	}
	return DateD(p.y, p.mo, p.d), nil
}

func toTimestamp(s, model string) (Datum, error) {
	p, err := parseByModel(strings.TrimSpace(s), model)
	if err != nil {
		return Datum{}, err
	}
	if err := p.validate(); err != nil {
		return Datum{}, err
	}
	t := time.Date(p.y, time.Month(p.mo), p.d, p.h, p.mi, p.s, 0, time.UTC)
	return TimestampD(t.UnixMicro()), nil
}

func toChar(d Datum, model string) (Datum, error) {
	var t time.Time
	switch d.Kind {
	case KDate:
		t = time.Unix(d.I*86400, 0).UTC()
	case KTimestamp:
		t = time.UnixMicro(d.I).UTC()
	default:
		return StringD(d.Render()), nil
	}
	toks, err := parseFormatModel(model)
	if err != nil {
		return Datum{}, err
	}
	var sb strings.Builder
	for _, tok := range toks {
		switch tok.code {
		case "":
			sb.WriteByte(tok.lit)
		case "YYYY":
			fmt.Fprintf(&sb, "%04d", t.Year())
		case "YY":
			fmt.Fprintf(&sb, "%02d", t.Year()%100)
		case "MM":
			fmt.Fprintf(&sb, "%02d", int(t.Month()))
		case "DD":
			fmt.Fprintf(&sb, "%02d", t.Day())
		case "HH24":
			fmt.Fprintf(&sb, "%02d", t.Hour())
		case "MI":
			fmt.Fprintf(&sb, "%02d", t.Minute())
		case "SS":
			fmt.Fprintf(&sb, "%02d", t.Second())
		}
	}
	return StringD(sb.String()), nil
}
