package cdw

import (
	"compress/gzip"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"etlvirt/internal/sqlparse"
)

// NullMarker is the CSV token the CDW's COPY recognizes as NULL. The
// virtualizer's DataConverter emits it for legacy NULL indicators.
const NullMarker = `\N`

// execCopy implements COPY INTO t FROM 'store://prefix/' — the CDW bulk
// ingest path (§6). Every object under the prefix is parsed as CSV (gzip
// deflated when the option says so or the key ends in .gz), values are cast
// to the column types, and the whole operation commits atomically.
func (e *Engine) execCopy(s *sqlparse.CopyStmt) (*Result, error) {
	if e.Store == nil {
		return nil, errf(CodeCopyFailed, "no cloud store attached to this engine")
	}
	t, err := e.Catalog.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	prefix := strings.TrimPrefix(s.From, "store://")
	var keys []string
	if len(s.Files) > 0 {
		// Manifest COPY: ingest exactly the named objects, in manifest order,
		// resolved relative to the prefix. Used by the virtualizer's copy
		// scheduler to land already-uploaded files while acquisition is still
		// producing more under the same prefix.
		keys = make([]string, len(s.Files))
		for i, name := range s.Files {
			keys[i] = prefix + name
		}
	} else {
		var err error
		keys, err = e.Store.List(prefix)
		if err != nil {
			return nil, errf(CodeCopyFailed, "listing %q: %v", prefix, err)
		}
	}
	if format := s.Options["format"]; format != "" && format != "csv" {
		return nil, errf(CodeCopyFailed, "unsupported COPY format %q", format)
	}
	gzipAll := s.Options["gzip"] == "true"
	delim := ','
	if d := s.Options["delimiter"]; d != "" {
		delim = rune(d[0])
	}

	var newRows [][]Datum
	rowSeq := int64(0)
	for _, key := range keys {
		rc, err := e.Store.Get(key)
		if err != nil {
			return nil, errf(CodeCopyFailed, "reading %q: %v", key, err)
		}
		var r io.Reader = rc
		if gzipAll || strings.HasSuffix(key, ".gz") {
			zr, err := gzip.NewReader(rc)
			if err != nil {
				rc.Close()
				return nil, errf(CodeCopyFailed, "gunzip %q: %v", key, err)
			}
			r = zr
		}
		rows, err := e.parseCSVRows(t, r, delim, &rowSeq)
		rc.Close()
		if err != nil {
			ee := AsError(err)
			ee.Msg = fmt.Sprintf("object %s: %s", key, ee.Msg)
			return nil, ee
		}
		newRows = append(newRows, rows...)
	}

	// Optional clustering: keep the table ordered by a column as batches
	// land, e.g. OPTIONS (order '__seq'). The virtualizer uses this so the
	// staging table's physical order matches the input row order even though
	// parallel FileWriters interleave the uploaded files — which keeps
	// order-sensitive legacy DML semantics (last update wins) intact. The
	// incoming batch is sorted, then merged into the already-clustered rows,
	// so a sequence of incremental manifest COPYs lands the exact physical
	// order one monolithic COPY of the same objects would.
	orderIdx := -1
	if orderCol := s.Options["order"]; orderCol != "" {
		orderIdx = t.ColIndex(orderCol)
		if orderIdx < 0 {
			return nil, errf(CodeNoSuchColumn, "COPY order column %q does not exist", orderCol)
		}
		var sortErr error
		sort.SliceStable(newRows, func(i, k int) bool {
			c, err := compareForSort(newRows[i][orderIdx], newRows[k][orderIdx])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if e.opts.EnforceUniqueness {
		if err := e.checkUniqueness(t, newRows, nil); err != nil {
			return nil, err
		}
	}
	if orderIdx >= 0 && len(t.rows) > 0 && len(newRows) > 0 {
		merged, err := mergeClustered(t.rows, newRows, orderIdx)
		if err != nil {
			return nil, err
		}
		t.rows = merged
	} else {
		t.rows = append(t.rows, newRows...)
	}
	return &Result{Activity: int64(len(newRows))}, nil
}

// mergeClustered merges a sorted incoming COPY batch into rows already
// clustered by the same column (earlier ordered COPYs keep that invariant).
// Existing rows win ties so repeated equal keys stay in arrival order.
func mergeClustered(existing, batch [][]Datum, idx int) ([][]Datum, error) {
	// Fast path: the batch strictly follows the existing tail (common when
	// uploads finish roughly in sequence order).
	c, err := compareForSort(existing[len(existing)-1][idx], batch[0][idx])
	if err != nil {
		return nil, err
	}
	if c <= 0 {
		return append(existing, batch...), nil
	}
	out := make([][]Datum, 0, len(existing)+len(batch))
	i, k := 0, 0
	for i < len(existing) && k < len(batch) {
		c, err := compareForSort(existing[i][idx], batch[k][idx])
		if err != nil {
			return nil, err
		}
		if c <= 0 {
			out = append(out, existing[i])
			i++
		} else {
			out = append(out, batch[k])
			k++
		}
	}
	out = append(out, existing[i:]...)
	out = append(out, batch[k:]...)
	return out, nil
}

func (e *Engine) parseCSVRows(t *Table, r io.Reader, delim rune, rowSeq *int64) ([][]Datum, error) {
	cr := csv.NewReader(r)
	cr.Comma = delim
	cr.FieldsPerRecord = len(t.Columns)
	cr.ReuseRecord = true
	var out [][]Datum
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, errf(CodeFieldCount, "malformed CSV: %v", err)
		}
		*rowSeq++
		row := make([]Datum, len(t.Columns))
		for i, field := range rec {
			var d Datum
			if field == NullMarker {
				d = Null()
			} else {
				var err error
				d, err = castDatum(StringD(field), t.Columns[i].Type)
				if err != nil {
					ee := AsError(err)
					ee.Row = *rowSeq
					ee.Field = t.Columns[i].Name
					return nil, ee
				}
			}
			if t.Columns[i].NotNull && d.IsNull() {
				return nil, &Error{Code: CodeNotNull, Row: *rowSeq, Field: t.Columns[i].Name,
					Msg: "NULL value in NOT NULL column"}
			}
			row[i] = d
		}
		out = append(out, row)
	}
}
