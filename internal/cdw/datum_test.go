package cdw

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{IntD(1), IntD(2), -1},
		{IntD(2), IntD(2), 0},
		{FloatD(1.5), IntD(1), 1},
		{DecimalD(150, 2), FloatD(1.5), 0},
		{DecimalD(150, 2), DecimalD(150, 2), 0},
		{DecimalD(150, 2), DecimalD(1500, 3), 0},
		{StringD("a"), StringD("b"), -1},
		{DateD(2020, 1, 1), DateD(2020, 1, 2), -1},
		{DateD(2020, 1, 1), StringD("2020-01-01"), 0},
		{StringD("09:00:00"), TimeD(9 * 3600), 0},
		{DateD(2020, 1, 1), TimestampD(DateD(2020, 1, 1).I * 86400 * 1e6), 0},
		{BoolD(false), BoolD(true), -1},
		{BytesD([]byte{1}), BytesD([]byte{2}), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%+v, %+v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%+v, %+v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(IntD(1), StringD("x")); err == nil {
		t.Error("int vs string compared")
	}
	if _, err := Compare(Null(), IntD(1)); err == nil {
		t.Error("NULL compared")
	}
	if _, err := Compare(DateD(2020, 1, 1), StringD("not a date")); err == nil {
		t.Error("bad implicit date coercion accepted")
	}
}

func TestPropertyCompareAntisymmetric(t *testing.T) {
	gen := func(r *rand.Rand) Datum {
		switch r.Intn(5) {
		case 0:
			return IntD(int64(r.Intn(100) - 50))
		case 1:
			return FloatD(float64(r.Intn(100)-50) / 4)
		case 2:
			return DecimalD(int64(r.Intn(10000)-5000), 2)
		case 3:
			return DecimalD(int64(r.Intn(1000)-500), 1)
		default:
			return IntD(int64(r.Intn(10)))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		ab, err1 := Compare(a, b)
		ba, err2 := Compare(b, a)
		if err1 != nil || err2 != nil || ab != -ba {
			return false
		}
		// transitivity on a chain
		ac, _ := Compare(a, c)
		bc, _ := Compare(b, c)
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGroupKeyConsistentWithCompare(t *testing.T) {
	// equal datums must share a group key (used by GROUP BY, DISTINCT and
	// uniqueness emulation)
	f := func(u int64, scaleRaw uint8) bool {
		scale := int(scaleRaw % 4)
		u %= 1_000_000
		a := DecimalD(u, scale)
		b := DecimalD(u*pow10i(1), scale+1) // same numeric value, shifted scale
		if scale+1 > 18 {
			return true
		}
		c, err := Compare(a, b)
		if err != nil || c != 0 {
			return false
		}
		return a.GroupKey() == b.GroupKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRenderFormats(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null(), ""},
		{BoolD(true), "true"},
		{IntD(-5), "-5"},
		{FloatD(2.5), "2.5"},
		{DecimalD(-12345, 2), "-123.45"},
		{StringD("x"), "x"},
		{DateD(1999, 12, 31), "1999-12-31"},
		{TimeD(3661), "01:01:01"},
		{TimestampD(0), "1970-01-01 00:00:00"},
		{BytesD([]byte{0xAB}), "AB"},
	}
	for _, c := range cases {
		if got := c.d.Render(); got != c.want {
			t.Errorf("Render(%+v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestPropertyCastStringRoundTrip(t *testing.T) {
	// rendering a datum and casting the text back to its column type must
	// reproduce the datum — this is the staging path (convert -> CSV ->
	// COPY cast) in miniature.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var d Datum
		var ct ColType
		switch r.Intn(6) {
		case 0:
			d, ct = IntD(int64(r.Uint32())-1<<31), ColType{Kind: KInt}
		case 1:
			d, ct = DecimalD(int64(r.Intn(2_000_000)-1_000_000), 2), ColType{Kind: KDecimal, Precision: 12, Scale: 2}
		case 2:
			d, ct = StringD(randToken(r)), ColType{Kind: KString, Length: 64}
		case 3:
			d, ct = DateD(1970+r.Intn(80), 1+r.Intn(12), 1+r.Intn(28)), ColType{Kind: KDate}
		case 4:
			d, ct = TimeD(int64(r.Intn(86400))), ColType{Kind: KTime}
		default:
			d, ct = TimestampD(int64(r.Intn(1_000_000))*1_000_000), ColType{Kind: KTimestamp}
		}
		back, err := castDatum(StringD(d.Render()), ct)
		if err != nil {
			return false
		}
		c, err := Compare(d, back)
		return err == nil && c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func randToken(r *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789 _-"
	n := r.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.Intn(len(alpha))]
	}
	return string(b)
}

func TestCastDatumEdgeCases(t *testing.T) {
	// string length enforcement
	if _, err := castDatum(StringD("toolong"), ColType{Kind: KString, Length: 3}); err == nil {
		t.Error("overlong string accepted")
	}
	// decimal precision enforcement
	if _, err := castDatum(StringD("99999999999"), ColType{Kind: KDecimal, Precision: 5, Scale: 0}); err == nil {
		t.Error("precision overflow accepted")
	}
	// decimal rescale with rounding
	d, err := castDatum(DecimalD(1005, 3), ColType{Kind: KDecimal, Precision: 10, Scale: 2})
	if err != nil || d.I != 101 { // 1.005 -> 1.01
		t.Errorf("rescale: %+v %v", d, err)
	}
	d, err = castDatum(DecimalD(-1005, 3), ColType{Kind: KDecimal, Precision: 10, Scale: 2})
	if err != nil || d.I != -101 {
		t.Errorf("negative rescale: %+v %v", d, err)
	}
	// int -> decimal
	d, err = castDatum(IntD(42), ColType{Kind: KDecimal, Precision: 10, Scale: 2})
	if err != nil || d.I != 4200 {
		t.Errorf("int->decimal: %+v %v", d, err)
	}
	// timestamp -> date truncation
	ts := TimestampD(DateD(2020, 6, 15).I*86400*1e6 + 3600*1e6)
	d, err = castDatum(ts, ColType{Kind: KDate})
	if err != nil || d.Render() != "2020-06-15" {
		t.Errorf("ts->date: %v %v", d.Render(), err)
	}
	// NULL passes through every cast
	for _, k := range []DKind{KBool, KInt, KFloat, KDecimal, KString, KDate, KTime, KTimestamp, KBytes} {
		d, err := castDatum(Null(), ColType{Kind: k, Precision: 5, Length: 5})
		if err != nil || !d.IsNull() {
			t.Errorf("NULL cast to %v: %+v %v", k, d, err)
		}
	}
}
