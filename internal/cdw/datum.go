// Package cdw implements the cloud data warehouse engine the virtualizer
// targets: a from-scratch SQL engine with a catalog, row storage, an
// expression evaluator, set-oriented DML, COPY-based bulk ingest from a cloud
// object store, and — deliberately — *unenforced* uniqueness constraints,
// matching the CDW properties the paper's error-handling design reacts to
// (§6, §7).
package cdw

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// DKind is the runtime type of a Datum.
type DKind uint8

// Datum kinds. The CDW type system is intentionally different from the
// legacy one (internal/ltype): dates are epoch days rather than the legacy
// integer encoding, timestamps are epoch microseconds, and strings carry a
// "national" (unicode) flag on the column, not the value.
const (
	KNull DKind = iota
	KBool
	KInt
	KFloat
	KDecimal
	KString
	KDate      // days since 1970-01-01
	KTime      // seconds since midnight
	KTimestamp // microseconds since the Unix epoch, UTC
	KBytes
)

// String names the kind.
func (k DKind) String() string {
	switch k {
	case KNull:
		return "NULL"
	case KBool:
		return "BOOLEAN"
	case KInt:
		return "BIGINT"
	case KFloat:
		return "DOUBLE"
	case KDecimal:
		return "DECIMAL"
	case KString:
		return "VARCHAR"
	case KDate:
		return "DATE"
	case KTime:
		return "TIME"
	case KTimestamp:
		return "TIMESTAMP"
	case KBytes:
		return "VARBINARY"
	default:
		return fmt.Sprintf("DKind(%d)", uint8(k))
	}
}

// Datum is one runtime value. Exactly one payload field is meaningful for a
// given kind: I for ints, dates, times, timestamps and unscaled decimals
// (with Scale), F for floats, S for strings, B for bytes and Bool for
// booleans. The zero Datum is NULL.
type Datum struct {
	Kind  DKind
	I     int64
	F     float64
	S     string
	B     []byte
	Bool  bool
	Scale int8 // decimal scale for KDecimal
}

// Null is the NULL datum.
func Null() Datum { return Datum{Kind: KNull} }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.Kind == KNull }

// BoolD returns a boolean datum.
func BoolD(v bool) Datum { return Datum{Kind: KBool, Bool: v} }

// IntD returns an integer datum.
func IntD(v int64) Datum { return Datum{Kind: KInt, I: v} }

// FloatD returns a float datum.
func FloatD(v float64) Datum { return Datum{Kind: KFloat, F: v} }

// DecimalD returns a decimal datum with the given unscaled value and scale.
func DecimalD(unscaled int64, scale int) Datum {
	return Datum{Kind: KDecimal, I: unscaled, Scale: int8(scale)}
}

// StringD returns a string datum.
func StringD(s string) Datum { return Datum{Kind: KString, S: s} }

// BytesD returns a bytes datum.
func BytesD(b []byte) Datum { return Datum{Kind: KBytes, B: b} }

// DateD returns a date datum for the given civil date.
func DateD(year, month, day int) Datum {
	return Datum{Kind: KDate, I: civilToEpochDays(year, month, day)}
}

// TimeD returns a time datum from seconds past midnight.
func TimeD(seconds int64) Datum { return Datum{Kind: KTime, I: seconds} }

// TimestampD returns a timestamp datum from epoch microseconds.
func TimestampD(micros int64) Datum { return Datum{Kind: KTimestamp, I: micros} }

func civilToEpochDays(y, m, d int) int64 {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

func epochDaysToCivil(days int64) (y, m, d int) {
	t := time.Unix(days*86400, 0).UTC()
	return t.Year(), int(t.Month()), t.Day()
}

// Render formats the datum as CDW client text (result sets, CSV export).
func (d Datum) Render() string {
	switch d.Kind {
	case KNull:
		return ""
	case KBool:
		if d.Bool {
			return "true"
		}
		return "false"
	case KInt:
		return strconv.FormatInt(d.I, 10)
	case KFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KDecimal:
		return formatDecimal(d.I, int(d.Scale))
	case KString:
		return d.S
	case KDate:
		y, m, dd := epochDaysToCivil(d.I)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
	case KTime:
		return fmt.Sprintf("%02d:%02d:%02d", d.I/3600, (d.I/60)%60, d.I%60)
	case KTimestamp:
		return time.UnixMicro(d.I).UTC().Format("2006-01-02 15:04:05")
	case KBytes:
		const hexdigits = "0123456789ABCDEF"
		var sb strings.Builder
		for _, b := range d.B {
			sb.WriteByte(hexdigits[b>>4])
			sb.WriteByte(hexdigits[b&0xF])
		}
		return sb.String()
	default:
		return ""
	}
}

func formatDecimal(unscaled int64, scale int) string {
	if scale <= 0 {
		return strconv.FormatInt(unscaled, 10)
	}
	neg := unscaled < 0
	u := unscaled
	if neg {
		u = -u
	}
	s := strconv.FormatInt(u, 10)
	for len(s) <= scale {
		s = "0" + s
	}
	out := s[:len(s)-scale] + "." + s[len(s)-scale:]
	if neg {
		out = "-" + out
	}
	return out
}

// isTemporal reports whether the kind is a date/time kind.
func isTemporal(k DKind) bool { return k == KDate || k == KTime || k == KTimestamp }

// isNumeric reports whether the kind participates in numeric coercion.
func (k DKind) isNumeric() bool {
	return k == KInt || k == KFloat || k == KDecimal
}

// asFloat converts any numeric datum to float64.
func (d Datum) asFloat() float64 {
	switch d.Kind {
	case KInt:
		return float64(d.I)
	case KFloat:
		return d.F
	case KDecimal:
		return float64(d.I) / math.Pow10(int(d.Scale))
	default:
		return math.NaN()
	}
}

// Compare orders two non-NULL datums of comparable kinds. It returns
// -1, 0, or 1, or an error when the kinds are not comparable.
func Compare(a, b Datum) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("cdw: Compare called on NULL")
	}
	if a.Kind.isNumeric() && b.Kind.isNumeric() {
		if a.Kind == KInt && b.Kind == KInt {
			return cmpI(a.I, b.I), nil
		}
		if a.Kind == KDecimal && b.Kind == KDecimal && a.Scale == b.Scale {
			return cmpI(a.I, b.I), nil
		}
		af, bf := a.asFloat(), b.asFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Kind != b.Kind {
		// date/timestamp cross comparisons promote date to timestamp
		if a.Kind == KDate && b.Kind == KTimestamp {
			return cmpI(a.I*86400*1e6, b.I), nil
		}
		if a.Kind == KTimestamp && b.Kind == KDate {
			return cmpI(a.I, b.I*86400*1e6), nil
		}
		// implicit string coercion against temporal types, as real warehouses
		// allow: WHERE d < '2015-01-01'
		if a.Kind == KString && isTemporal(b.Kind) {
			ac, err := castDatum(a, ColType{Kind: b.Kind})
			if err != nil {
				return 0, err
			}
			return cmpI(ac.I, b.I), nil
		}
		if b.Kind == KString && isTemporal(a.Kind) {
			bc, err := castDatum(b, ColType{Kind: a.Kind})
			if err != nil {
				return 0, err
			}
			return cmpI(a.I, bc.I), nil
		}
		return 0, fmt.Errorf("cdw: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case KBool:
		return cmpI(boolToInt(a.Bool), boolToInt(b.Bool)), nil
	case KString:
		return strings.Compare(a.S, b.S), nil
	case KBytes:
		return strings.Compare(string(a.B), string(b.B)), nil
	case KDate, KTime, KTimestamp:
		return cmpI(a.I, b.I), nil
	default:
		return 0, fmt.Errorf("cdw: cannot compare kind %s", a.Kind)
	}
}

func cmpI(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// GroupKey renders the datum into a canonical string used for grouping and
// duplicate detection; NULLs group together.
func (d Datum) GroupKey() string {
	if d.IsNull() {
		return "\x00N"
	}
	switch d.Kind {
	case KFloat:
		return "f" + strconv.FormatFloat(d.F, 'b', -1, 64)
	case KDecimal:
		// normalize scale so 1.50 and 1.5 group together
		return "d" + strconv.FormatFloat(d.asFloat(), 'b', -1, 64)
	case KInt:
		return "i" + strconv.FormatInt(d.I, 10)
	case KString:
		return "s" + d.S
	case KBytes:
		return "b" + string(d.B)
	case KBool:
		if d.Bool {
			return "t"
		}
		return "F"
	default:
		return d.Kind.String() + strconv.FormatInt(d.I, 10)
	}
}
