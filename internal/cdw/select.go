package cdw

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"etlvirt/internal/sqlparse"
)

// rowSource is an intermediate relation during SELECT execution: a column
// frame plus materialized rows. colTypes carries the declared type for
// columns that originate in base tables (nil entry when unknown).
type rowSource struct {
	cols     []frameCol
	colTypes []*ColType
	rows     [][]Datum
}

// execSelectTop runs a SELECT as a top-level statement.
func (e *Engine) execSelectTop(s *sqlparse.SelectStmt) (*Result, error) {
	rows, cols, err := e.execSelectCols(s, nil, 0)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: cols, Rows: rows, Activity: int64(len(rows))}, nil
}

// execSelect runs a (sub)query and returns its rows. maxRows > 0 stops early
// once that many rows are produced (used by EXISTS and scalar subqueries);
// it is only a shortcut when the query has no ORDER BY/aggregation.
func (e *Engine) execSelect(s *sqlparse.SelectStmt, outer *frame, maxRows int) ([][]Datum, []ResultCol, error) {
	rows, cols, err := e.execSelectCols(s, outer, maxRows)
	return rows, cols, err
}

func (e *Engine) execSelectCols(s *sqlparse.SelectStmt, outer *frame, maxRows int) ([][]Datum, []ResultCol, error) {
	if s.Union != nil {
		return e.execUnion(s, outer)
	}
	src, err := e.buildFrom(s.From, outer)
	if err != nil {
		return nil, nil, err
	}
	ctx := &evalCtx{eng: e}

	// WHERE
	if s.Where != nil {
		filtered := src.rows[:0:0]
		for _, row := range src.rows {
			f := &frame{cols: src.cols, row: row, parent: outer}
			d, err := e.eval(ctx, s.Where, f)
			if err != nil {
				return nil, nil, err
			}
			if !d.IsNull() && d.Kind == KBool && d.Bool {
				filtered = append(filtered, row)
			} else if !d.IsNull() && d.Kind != KBool {
				return nil, nil, errf(CodeTypeMismatch, "WHERE must be a boolean")
			}
		}
		src.rows = filtered
	}

	// aggregate detection
	aggCalls := collectAggregates(s)
	grouped := len(s.GroupBy) > 0 || len(aggCalls) > 0

	type outRow struct {
		frame *frame
		ctx   *evalCtx
	}
	var work []outRow
	if grouped {
		groups, err := e.groupRows(ctx, s, src, outer, aggCalls)
		if err != nil {
			return nil, nil, err
		}
		for _, g := range groups {
			work = append(work, outRow{frame: g.frame, ctx: g.ctx})
		}
	} else {
		for _, row := range src.rows {
			f := &frame{cols: src.cols, row: row, parent: outer}
			work = append(work, outRow{frame: f, ctx: ctx})
		}
	}

	// HAVING (non-grouped HAVING is rejected at group construction)
	if s.Having != nil {
		if !grouped {
			return nil, nil, errf(CodeSyntax, "HAVING requires GROUP BY or aggregates")
		}
		kept := work[:0:0]
		for _, w := range work {
			d, err := e.eval(w.ctx, s.Having, w.frame)
			if err != nil {
				return nil, nil, err
			}
			if !d.IsNull() && d.Kind == KBool && d.Bool {
				kept = append(kept, w)
			}
		}
		work = kept
	}

	// expand projection items
	items, err := expandStars(s.Items, src)
	if err != nil {
		return nil, nil, err
	}
	outCols := make([]ResultCol, len(items))
	for i, it := range items {
		outCols[i] = ResultCol{Name: outputName(it, i)}
		if ct := declaredType(it.Expr, src); ct != nil {
			outCols[i].Type = *ct
		}
	}

	aliasCols := make([]frameCol, len(items))
	for i, it := range items {
		aliasCols[i] = frameCol{name: strings.ToLower(outCols[i].Name)}
		_ = it
	}

	type sortableRow struct {
		out  []Datum
		keys []Datum
	}
	var produced []sortableRow
	earlyStop := maxRows > 0 && len(s.OrderBy) == 0 && !grouped && !s.Distinct

	for _, w := range work {
		out := make([]Datum, len(items))
		for i, it := range items {
			d, err := e.eval(w.ctx, it.Expr, w.frame)
			if err != nil {
				return nil, nil, err
			}
			out[i] = d
			if outCols[i].Type.Kind == KNull && d.Kind != KNull {
				outCols[i].Type = inferType(d)
			}
		}
		sr := sortableRow{out: out}
		if len(s.OrderBy) > 0 {
			// order keys see the source frame plus output aliases
			af := &frame{cols: aliasCols, row: out, parent: w.frame}
			for _, ob := range s.OrderBy {
				if ord, ok := orderOrdinal(ob.Expr, len(out)); ok {
					sr.keys = append(sr.keys, out[ord])
					continue
				}
				k, err := e.eval(w.ctx, ob.Expr, af)
				if err != nil {
					return nil, nil, err
				}
				sr.keys = append(sr.keys, k)
			}
		}
		produced = append(produced, sr)
		if earlyStop && len(produced) >= maxRows {
			break
		}
	}

	if s.Distinct {
		seen := make(map[string]bool, len(produced))
		dedup := produced[:0:0]
		for _, sr := range produced {
			var kb strings.Builder
			for _, d := range sr.out {
				kb.WriteString(d.GroupKey())
				kb.WriteByte(0)
			}
			if !seen[kb.String()] {
				seen[kb.String()] = true
				dedup = append(dedup, sr)
			}
		}
		produced = dedup
	}

	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(produced, func(i, j int) bool {
			for k, ob := range s.OrderBy {
				a, b := produced[i].keys[k], produced[j].keys[k]
				c, err := compareForSort(a, b)
				if err != nil && sortErr == nil {
					sortErr = err
				}
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, nil, sortErr
		}
	}

	if s.Limit != nil && int64(len(produced)) > *s.Limit {
		produced = produced[:*s.Limit]
	}

	rows := make([][]Datum, len(produced))
	for i, sr := range produced {
		rows[i] = sr.out
	}
	for i := range outCols {
		if outCols[i].Type.Kind == KNull {
			outCols[i].Type = ColType{Kind: KString}
		}
	}
	return rows, outCols, nil
}

// execUnion evaluates a UNION ALL chain: each branch runs independently,
// rows concatenate, and the head's ORDER BY / LIMIT (hoisted there by the
// parser) apply to the combined result. ORDER BY keys resolve against the
// output column names of the first branch.
func (e *Engine) execUnion(s *sqlparse.SelectStmt, outer *frame) ([][]Datum, []ResultCol, error) {
	var rows [][]Datum
	var cols []ResultCol
	for b := s; b != nil; b = b.Union {
		branch := *b // shallow copy: strip chain and combined clauses
		branch.Union = nil
		if b == s {
			branch.OrderBy = nil
			branch.Limit = nil
		}
		bRows, bCols, err := e.execSelectCols(&branch, outer, 0)
		if err != nil {
			return nil, nil, err
		}
		if cols == nil {
			cols = bCols
		} else if len(bCols) != len(cols) {
			return nil, nil, errf(CodeSyntax, "UNION ALL branches have %d and %d columns", len(cols), len(bCols))
		}
		rows = append(rows, bRows...)
	}

	if len(s.OrderBy) > 0 {
		aliasCols := make([]frameCol, len(cols))
		for i, c := range cols {
			aliasCols[i] = frameCol{name: strings.ToLower(c.Name)}
		}
		ctx := &evalCtx{eng: e}
		keys := make([][]Datum, len(rows))
		for i, row := range rows {
			f := &frame{cols: aliasCols, row: row, parent: outer}
			for _, ob := range s.OrderBy {
				if ord, ok := orderOrdinal(ob.Expr, len(row)); ok {
					keys[i] = append(keys[i], row[ord])
					continue
				}
				k, err := e.eval(ctx, ob.Expr, f)
				if err != nil {
					return nil, nil, err
				}
				keys[i] = append(keys[i], k)
			}
		}
		idx := make([]int, len(rows))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		sort.SliceStable(idx, func(a, b int) bool {
			for k, ob := range s.OrderBy {
				c, err := compareForSort(keys[idx[a]][k], keys[idx[b]][k])
				if err != nil && sortErr == nil {
					sortErr = err
				}
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, nil, sortErr
		}
		sorted := make([][]Datum, len(rows))
		for i, j := range idx {
			sorted[i] = rows[j]
		}
		rows = sorted
	}
	if s.Limit != nil && int64(len(rows)) > *s.Limit {
		rows = rows[:*s.Limit]
	}
	return rows, cols, nil
}

// orderOrdinal recognizes the SQL ordinal form ORDER BY n (1-based output
// column position) and returns the 0-based index.
func orderOrdinal(x sqlparse.Expr, ncols int) (int, bool) {
	lit, ok := x.(*sqlparse.Literal)
	if !ok || lit.Kind != sqlparse.LitInt {
		return 0, false
	}
	if lit.Int < 1 || lit.Int > int64(ncols) {
		return 0, false
	}
	return int(lit.Int) - 1, true
}

// compareForSort orders datums treating NULL as smallest.
func compareForSort(a, b Datum) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	c, err := Compare(a, b)
	if err != nil {
		return 0, AsError(err)
	}
	return c, nil
}

func inferType(d Datum) ColType {
	switch d.Kind {
	case KDecimal:
		return ColType{Kind: KDecimal, Precision: 18, Scale: int(d.Scale)}
	default:
		return ColType{Kind: d.Kind}
	}
}

func outputName(it sqlparse.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*sqlparse.ColRef); ok {
		return c.Name
	}
	if fc, ok := it.Expr.(*sqlparse.FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return fmt.Sprintf("col%d", i+1)
}

func declaredType(x sqlparse.Expr, src *rowSource) *ColType {
	c, ok := x.(*sqlparse.ColRef)
	if !ok {
		return nil
	}
	qual := strings.ToLower(c.Qualifier)
	name := strings.ToLower(c.Name)
	for i, fc := range src.cols {
		if fc.name == name && (qual == "" || fc.qual == qual) {
			return src.colTypes[i]
		}
	}
	return nil
}

func expandStars(items []sqlparse.SelectItem, src *rowSource) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		qual := strings.ToLower(it.StarTable)
		matched := false
		for _, fc := range src.cols {
			if qual != "" && fc.qual != qual {
				continue
			}
			matched = true
			out = append(out, sqlparse.SelectItem{
				Expr:  &sqlparse.ColRef{Qualifier: fc.qual, Name: fc.name},
				Alias: fc.name,
			})
		}
		if !matched {
			if qual != "" {
				return nil, errf(CodeNoSuchObject, "unknown table %s in %s.*", it.StarTable, it.StarTable)
			}
			return nil, errf(CodeSyntax, "SELECT * with no FROM clause")
		}
	}
	return out, nil
}

// buildFrom materializes the FROM clause into a rowSource. Multiple items
// combine as a cross product.
func (e *Engine) buildFrom(from []sqlparse.TableExpr, outer *frame) (*rowSource, error) {
	if len(from) == 0 {
		return &rowSource{rows: [][]Datum{{}}}, nil
	}
	acc, err := e.buildTableExpr(from[0], outer)
	if err != nil {
		return nil, err
	}
	for _, te := range from[1:] {
		right, err := e.buildTableExpr(te, outer)
		if err != nil {
			return nil, err
		}
		acc = crossProduct(acc, right)
	}
	return acc, nil
}

func (e *Engine) buildTableExpr(te sqlparse.TableExpr, outer *frame) (*rowSource, error) {
	switch t := te.(type) {
	case *sqlparse.TableRef:
		tbl, err := e.Catalog.Lookup(t.Table)
		if err != nil {
			return nil, err
		}
		qual := strings.ToLower(t.Alias)
		if qual == "" {
			qual = strings.ToLower(t.Table.Name)
		}
		src := &rowSource{}
		for i := range tbl.Columns {
			src.cols = append(src.cols, frameCol{qual: qual, name: strings.ToLower(tbl.Columns[i].Name)})
			ct := tbl.Columns[i].Type
			src.colTypes = append(src.colTypes, &ct)
		}
		src.rows = tbl.snapshotRows()
		return src, nil

	case *sqlparse.SubqueryTable:
		rows, cols, err := e.execSelect(t.Select, outer, 0)
		if err != nil {
			return nil, err
		}
		src := &rowSource{rows: rows}
		qual := strings.ToLower(t.Alias)
		for _, c := range cols {
			src.cols = append(src.cols, frameCol{qual: qual, name: strings.ToLower(c.Name)})
			ct := c.Type
			src.colTypes = append(src.colTypes, &ct)
		}
		return src, nil

	case *sqlparse.Join:
		left, err := e.buildTableExpr(t.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := e.buildTableExpr(t.Right, outer)
		if err != nil {
			return nil, err
		}
		return e.joinSources(t, left, right, outer)

	default:
		return nil, errf(CodeUnsupported, "unsupported table expression %T", te)
	}
}

func crossProduct(l, r *rowSource) *rowSource {
	out := &rowSource{
		cols:     append(append([]frameCol{}, l.cols...), r.cols...),
		colTypes: append(append([]*ColType{}, l.colTypes...), r.colTypes...),
	}
	for _, lr := range l.rows {
		for _, rr := range r.rows {
			row := make([]Datum, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func (e *Engine) joinSources(j *sqlparse.Join, l, r *rowSource, outer *frame) (*rowSource, error) {
	out := &rowSource{
		cols:     append(append([]frameCol{}, l.cols...), r.cols...),
		colTypes: append(append([]*ColType{}, l.colTypes...), r.colTypes...),
	}
	if j.Type == sqlparse.JoinCross {
		return crossProduct(l, r), nil
	}
	if done, err := e.hashJoin(j, l, r, out, outer); done || err != nil {
		return out, err
	}
	ctx := &evalCtx{eng: e}
	nullsRight := make([]Datum, len(r.cols))
	for _, lr := range l.rows {
		matched := false
		for _, rr := range r.rows {
			row := make([]Datum, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			f := &frame{cols: out.cols, row: row, parent: outer}
			d, err := e.eval(ctx, j.On, f)
			if err != nil {
				return nil, err
			}
			if !d.IsNull() && d.Kind == KBool && d.Bool {
				matched = true
				out.rows = append(out.rows, row)
			}
		}
		if !matched && j.Type == sqlparse.JoinLeft {
			row := make([]Datum, 0, len(lr)+len(nullsRight))
			row = append(row, lr...)
			row = append(row, nullsRight...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// hashJoin executes an equi-join by hashing the right side when the ON
// clause is a conjunction containing at least one classifiable equality
// (one side referencing only left columns, the other only right columns).
// Remaining conjuncts run as a residual filter. It reports done=false when
// the ON shape does not qualify, leaving the nested-loop path to handle it.
func (e *Engine) hashJoin(j *sqlparse.Join, l, r *rowSource, out *rowSource, outer *frame) (bool, error) {
	conjuncts := splitConjuncts(j.On)
	var keys []keyPair
	var residual []sqlparse.Expr
	for _, c := range conjuncts {
		eq, ok := c.(*sqlparse.BinaryExpr)
		if !ok || eq.Op != "=" {
			residual = append(residual, c)
			continue
		}
		lSide, rSide := classifySide(eq.L, l, r), classifySide(eq.R, l, r)
		switch {
		case lSide == sideLeft && rSide == sideRight:
			keys = append(keys, keyPair{left: eq.L, right: eq.R})
		case lSide == sideRight && rSide == sideLeft:
			keys = append(keys, keyPair{left: eq.R, right: eq.L})
		default:
			residual = append(residual, c)
		}
	}
	if len(keys) == 0 {
		return false, nil
	}

	ctx := &evalCtx{eng: e}
	// build: hash the right rows on their key expressions
	table := make(map[string][][]Datum, len(r.rows))
	for _, rr := range r.rows {
		f := &frame{cols: r.cols, row: rr, parent: outer}
		k, null, err := e.joinKey(ctx, f, keys, func(p keyPair) sqlparse.Expr { return p.right })
		if err != nil {
			return true, err
		}
		if null {
			continue // NULL keys never join
		}
		table[k] = append(table[k], rr)
	}
	// probe
	nullsRight := make([]Datum, len(r.cols))
	for _, lr := range l.rows {
		lf := &frame{cols: l.cols, row: lr, parent: outer}
		matched := false
		k, null, err := e.joinKey(ctx, lf, keys, func(p keyPair) sqlparse.Expr { return p.left })
		if err != nil {
			return true, err
		}
		if !null {
			for _, rr := range table[k] {
				row := make([]Datum, 0, len(lr)+len(rr))
				row = append(row, lr...)
				row = append(row, rr...)
				ok := true
				if len(residual) > 0 {
					f := &frame{cols: out.cols, row: row, parent: outer}
					for _, c := range residual {
						d, err := e.eval(ctx, c, f)
						if err != nil {
							return true, err
						}
						if d.IsNull() || d.Kind != KBool || !d.Bool {
							ok = false
							break
						}
					}
				}
				if ok {
					matched = true
					out.rows = append(out.rows, row)
				}
			}
		}
		if !matched && j.Type == sqlparse.JoinLeft {
			row := make([]Datum, 0, len(lr)+len(nullsRight))
			row = append(row, lr...)
			row = append(row, nullsRight...)
			out.rows = append(out.rows, row)
		}
	}
	return true, nil
}

// keyPair is one classified equality of a hash join: left evaluates against
// the left input, right against the right input.
type keyPair struct{ left, right sqlparse.Expr }

// joinKey renders the concatenated group key of the key expressions for one
// row, normalizing numeric kinds so BIGINT and DECIMAL keys hash alike.
func (e *Engine) joinKey(ctx *evalCtx, f *frame, keys []keyPair, pick func(keyPair) sqlparse.Expr) (string, bool, error) {
	var sb strings.Builder
	for _, p := range keys {
		d, err := e.eval(ctx, pick(p), f)
		if err != nil {
			return "", false, err
		}
		if d.IsNull() {
			return "", true, nil
		}
		if d.Kind.isNumeric() {
			sb.WriteString("n" + strconv.FormatFloat(d.asFloat(), 'b', -1, 64))
		} else {
			sb.WriteString(d.GroupKey())
		}
		sb.WriteByte(0)
	}
	return sb.String(), false, nil
}

func splitConjuncts(x sqlparse.Expr) []sqlparse.Expr {
	if b, ok := x.(*sqlparse.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlparse.Expr{x}
}

type exprSide int

const (
	sideNone exprSide = iota
	sideLeft
	sideRight
	sideMixed
)

// classifySide determines which join input an expression's column
// references resolve against. References resolving in neither side (outer
// correlation) are neutral; a reference resolving in both is ambiguous and
// forces the nested-loop path.
func classifySide(x sqlparse.Expr, l, r *rowSource) exprSide {
	side := sideNone
	wrap := &sqlparse.SelectStmt{Items: []sqlparse.SelectItem{{Expr: x}}}
	sqlparse.WalkExprs(wrap, func(e sqlparse.Expr) {
		c, ok := e.(*sqlparse.ColRef)
		if !ok || side == sideMixed {
			return
		}
		inL := frameHasCol(l.cols, c)
		inR := frameHasCol(r.cols, c)
		var this exprSide
		switch {
		case inL && inR:
			side = sideMixed
			return
		case inL:
			this = sideLeft
		case inR:
			this = sideRight
		default:
			return // outer reference: neutral
		}
		if side == sideNone {
			side = this
		} else if side != this {
			side = sideMixed
		}
	})
	return side
}

func frameHasCol(cols []frameCol, c *sqlparse.ColRef) bool {
	qual := strings.ToLower(c.Qualifier)
	name := strings.ToLower(c.Name)
	for _, fc := range cols {
		if fc.name == name && (qual == "" || fc.qual == qual) {
			return true
		}
	}
	return false
}

// collectAggregates finds aggregate calls in projections, HAVING and ORDER BY.
func collectAggregates(s *sqlparse.SelectStmt) []*sqlparse.FuncCall {
	var out []*sqlparse.FuncCall
	visit := func(x sqlparse.Expr) {
		if fc, ok := x.(*sqlparse.FuncCall); ok && isAggregate(fc.Name) {
			out = append(out, fc)
		}
	}
	tmp := &sqlparse.SelectStmt{Items: s.Items, Having: s.Having, OrderBy: s.OrderBy}
	sqlparse.WalkExprs(tmp, visit)
	return out
}

type groupOut struct {
	frame *frame
	ctx   *evalCtx
}

func (e *Engine) groupRows(ctx *evalCtx, s *sqlparse.SelectStmt, src *rowSource, outer *frame, aggCalls []*sqlparse.FuncCall) ([]groupOut, error) {
	type group struct {
		rep  []Datum
		rows [][]Datum
	}
	var order []string
	groups := make(map[string]*group)
	for _, row := range src.rows {
		f := &frame{cols: src.cols, row: row, parent: outer}
		var kb strings.Builder
		for _, g := range s.GroupBy {
			d, err := e.eval(ctx, g, f)
			if err != nil {
				return nil, err
			}
			kb.WriteString(d.GroupKey())
			kb.WriteByte(0)
		}
		k := kb.String()
		grp, ok := groups[k]
		if !ok {
			grp = &group{rep: row}
			groups[k] = grp
			order = append(order, k)
		}
		grp.rows = append(grp.rows, row)
	}
	// Global aggregation without GROUP BY always yields one group, possibly
	// over zero rows.
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{rep: make([]Datum, len(src.cols))}
		order = append(order, "")
	}

	var outs []groupOut
	for _, k := range order {
		grp := groups[k]
		aggVals := make(map[sqlparse.Expr]Datum, len(aggCalls))
		for _, call := range aggCalls {
			v, err := e.computeAggregate(ctx, call, src, grp.rows, outer)
			if err != nil {
				return nil, err
			}
			aggVals[call] = v
		}
		f := &frame{cols: src.cols, row: grp.rep, parent: outer}
		outs = append(outs, groupOut{frame: f, ctx: &evalCtx{eng: e, agg: aggVals}})
	}
	return outs, nil
}

func (e *Engine) computeAggregate(ctx *evalCtx, call *sqlparse.FuncCall, src *rowSource, rows [][]Datum, outer *frame) (Datum, error) {
	if len(call.Args) != 1 {
		return Datum{}, errf(CodeSyntax, "%s expects one argument", call.Name)
	}
	_, isStar := call.Args[0].(*sqlparse.Star)
	if isStar {
		if call.Name != "COUNT" {
			return Datum{}, errf(CodeSyntax, "* only valid in COUNT")
		}
		return IntD(int64(len(rows))), nil
	}
	var vals []Datum
	seen := map[string]bool{}
	for _, row := range rows {
		f := &frame{cols: src.cols, row: row, parent: outer}
		d, err := e.eval(ctx, call.Args[0], f)
		if err != nil {
			return Datum{}, err
		}
		if d.IsNull() {
			continue
		}
		if call.Distinct {
			k := d.GroupKey()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, d)
	}
	switch call.Name {
	case "COUNT":
		return IntD(int64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := Compare(v, best)
			if err != nil {
				return Datum{}, AsError(err)
			}
			if (call.Name == "MIN" && c < 0) || (call.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		allInt := true
		var sumI int64
		var sumF float64
		for _, v := range vals {
			if v.Kind == KInt {
				sumI += v.I
				sumF += float64(v.I)
				continue
			}
			if !v.Kind.isNumeric() {
				return Datum{}, errf(CodeTypeMismatch, "%s requires numbers, got %s", call.Name, v.Kind)
			}
			allInt = false
			sumF += v.asFloat()
		}
		if call.Name == "SUM" {
			if allInt {
				return IntD(sumI), nil
			}
			return FloatD(sumF), nil
		}
		return FloatD(sumF / float64(len(vals))), nil
	case "XOR_AGG":
		// Commutative fold for order-insensitive checksums: XOR of the
		// integer values (typically HASH64 results). Like SUM, an empty
		// input yields NULL rather than a zero that could masquerade as a
		// real checksum.
		if len(vals) == 0 {
			return Null(), nil
		}
		var acc int64
		for _, v := range vals {
			n, err := toInt(v)
			if err != nil {
				return Datum{}, errf(CodeTypeMismatch, "XOR_AGG requires integers, got %s", v.Kind)
			}
			acc ^= n
		}
		return IntD(acc), nil
	default:
		return Datum{}, errf(CodeUnsupported, "unknown aggregate %s", call.Name)
	}
}
