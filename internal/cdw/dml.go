package cdw

import (
	"fmt"
	"strings"

	"etlvirt/internal/sqlparse"
)

// resolveInsertColumns maps the statement's column list (or the full table
// when absent) to column indexes.
func resolveInsertColumns(t *Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, len(t.Columns))
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := t.ColIndex(c)
		if j < 0 {
			return nil, errf(CodeNoSuchColumn, "column %s does not exist in %s", c, t.Name)
		}
		idx[i] = j
	}
	return idx, nil
}

// coerceRow builds a full-width table row from values for the given column
// indexes, applying casts, defaults, NOT NULL and length checks. rowSeq is
// the 1-based input row for error attribution.
func (e *Engine) coerceRow(t *Table, colIdx []int, vals []Datum, rowSeq int64) ([]Datum, error) {
	if len(vals) != len(colIdx) {
		return nil, &Error{Code: CodeFieldCount, Row: rowSeq,
			Msg: fmt.Sprintf("%d values for %d columns", len(vals), len(colIdx))}
	}
	row := make([]Datum, len(t.Columns))
	provided := make([]bool, len(t.Columns))
	for i, j := range colIdx {
		d, err := castDatum(vals[i], t.Columns[j].Type)
		if err != nil {
			ee := AsError(err)
			ee.Row = rowSeq
			if ee.Field == "" {
				ee.Field = t.Columns[j].Name
			}
			return nil, ee
		}
		row[j] = d
		provided[j] = true
	}
	ctx := &evalCtx{eng: e}
	for j := range t.Columns {
		if !provided[j] {
			if t.Columns[j].Default != nil {
				d, err := e.eval(ctx, t.Columns[j].Default, &frame{})
				if err != nil {
					return nil, err
				}
				if d, err = castDatum(d, t.Columns[j].Type); err != nil {
					return nil, err
				}
				row[j] = d
			} else {
				row[j] = Null()
			}
		}
		if t.Columns[j].NotNull && row[j].IsNull() {
			return nil, &Error{Code: CodeNotNull, Row: rowSeq, Field: t.Columns[j].Name,
				Msg: fmt.Sprintf("NULL value in NOT NULL column %s", t.Columns[j].Name)}
		}
	}
	return row, nil
}

// keyString renders the values of the index columns for duplicate detection.
func keyString(row []Datum, idx []int) (string, bool) {
	var sb strings.Builder
	for _, j := range idx {
		if row[j].IsNull() {
			// NULLs never collide in unique constraints.
			return "", false
		}
		sb.WriteString(row[j].GroupKey())
		sb.WriteByte(0)
	}
	return sb.String(), true
}

// checkUniqueness rejects newRows that collide with existing rows or each
// other on the primary key or any unique constraint. Caller holds t.mu.
func (e *Engine) checkUniqueness(t *Table, newRows [][]Datum, seqs []int64) error {
	constraints := make([][]int, 0, 1+len(t.Unique))
	if len(t.PrimaryKey) > 0 {
		constraints = append(constraints, t.PrimaryKey)
	}
	constraints = append(constraints, t.Unique...)
	for _, idx := range constraints {
		seen := make(map[string]bool, len(t.rows)+len(newRows))
		for _, row := range t.rows {
			if k, ok := keyString(row, idx); ok {
				seen[k] = true
			}
		}
		for i, row := range newRows {
			k, ok := keyString(row, idx)
			if !ok {
				continue
			}
			if seen[k] {
				var seq int64
				if i < len(seqs) {
					seq = seqs[i]
				}
				return &Error{Code: CodeUniqueness, Row: seq,
					Field: t.Columns[idx[0]].Name,
					Msg:   "duplicate unique key value"}
			}
			seen[k] = true
		}
	}
	return nil
}

func (e *Engine) execInsert(s *sqlparse.InsertStmt) (*Result, error) {
	t, err := e.Catalog.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	colIdx, err := resolveInsertColumns(t, s.Columns)
	if err != nil {
		return nil, err
	}

	var newRows [][]Datum
	var seqs []int64
	if s.Select != nil {
		rows, _, err := e.execSelect(s.Select, nil, 0)
		if err != nil {
			return nil, err
		}
		for i, vals := range rows {
			row, err := e.coerceRow(t, colIdx, vals, int64(i+1))
			if err != nil {
				return nil, err
			}
			newRows = append(newRows, row)
			seqs = append(seqs, int64(i+1))
		}
	} else {
		ctx := &evalCtx{eng: e}
		for i, exprs := range s.Rows {
			vals := make([]Datum, len(exprs))
			for j, x := range exprs {
				d, err := e.eval(ctx, x, &frame{})
				if err != nil {
					ee := AsError(err)
					ee.Row = int64(i + 1)
					return nil, ee
				}
				vals[j] = d
			}
			row, err := e.coerceRow(t, colIdx, vals, int64(i+1))
			if err != nil {
				return nil, err
			}
			newRows = append(newRows, row)
			seqs = append(seqs, int64(i+1))
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if e.opts.EnforceUniqueness {
		if err := e.checkUniqueness(t, newRows, seqs); err != nil {
			return nil, err
		}
	}
	t.rows = append(t.rows, newRows...)
	return &Result{Activity: int64(len(newRows))}, nil
}

func (e *Engine) execUpdate(s *sqlparse.UpdateStmt) (*Result, error) {
	t, err := e.Catalog.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	tQual := strings.ToLower(s.Alias)
	if tQual == "" {
		tQual = strings.ToLower(s.Table.Name)
	}
	targetCols := make([]frameCol, len(t.Columns))
	for i, c := range t.Columns {
		targetCols[i] = frameCol{qual: tQual, name: strings.ToLower(c.Name)}
	}
	setIdx := make([]int, len(s.Set))
	for i, a := range s.Set {
		j := t.ColIndex(a.Column)
		if j < 0 {
			return nil, errf(CodeNoSuchColumn, "column %s does not exist in %s", a.Column, t.Name)
		}
		setIdx[i] = j
	}

	var src *rowSource
	if len(s.From) > 0 {
		if src, err = e.buildFrom(s.From, nil); err != nil {
			return nil, err
		}
	}
	ctx := &evalCtx{eng: e}

	t.mu.Lock()
	defer t.mu.Unlock()
	updated := int64(0)
	newRows := make([][]Datum, len(t.rows))
	for ri, row := range t.rows {
		newRows[ri] = row
		var matchFrame *frame
		if src == nil {
			f := &frame{cols: targetCols, row: row}
			if s.Where != nil {
				d, err := e.eval(ctx, s.Where, f)
				if err != nil {
					return nil, err
				}
				if d.IsNull() || d.Kind != KBool || !d.Bool {
					continue
				}
			}
			matchFrame = f
			newRow, err := e.applyAssignments(ctx, t, s.Set, setIdx, row, matchFrame)
			if err != nil {
				return nil, err
			}
			newRows[ri] = newRow
			updated++
			continue
		}
		// Target row joined with each source row; every match applies, in
		// source order, so the last matching source row wins — the semantics
		// a tuple-at-a-time legacy apply would produce for ordered input.
		// Activity counts each match application (one per driving source
		// row), again matching the tuple-at-a-time accounting.
		newRow := row
		matched := false
		for _, srow := range src.rows {
			cols := append(append([]frameCol{}, targetCols...), src.cols...)
			joined := make([]Datum, 0, len(newRow)+len(srow))
			joined = append(joined, newRow...)
			joined = append(joined, srow...)
			f := &frame{cols: cols, row: joined}
			if s.Where != nil {
				d, err := e.eval(ctx, s.Where, f)
				if err != nil {
					return nil, err
				}
				if d.IsNull() || d.Kind != KBool || !d.Bool {
					continue
				}
			}
			matched = true
			updated++
			updatedRow, err := e.applyAssignments(ctx, t, s.Set, setIdx, newRow, f)
			if err != nil {
				return nil, err
			}
			newRow = updatedRow
		}
		if matched {
			newRows[ri] = newRow
		}
	}
	if e.opts.EnforceUniqueness && updated > 0 {
		saved := t.rows
		t.rows = nil
		err := e.checkUniqueness(t, newRows, nil)
		t.rows = saved
		if err != nil {
			return nil, err
		}
	}
	t.rows = newRows
	return &Result{Activity: updated}, nil
}

// applyAssignments evaluates the SET clause in frame f and returns a copy of
// row with the assigned columns replaced, cast and constraint-checked.
func (e *Engine) applyAssignments(ctx *evalCtx, t *Table, set []sqlparse.Assignment, setIdx []int, row []Datum, f *frame) ([]Datum, error) {
	newRow := append([]Datum{}, row...)
	for i, a := range set {
		d, err := e.eval(ctx, a.Value, f)
		if err != nil {
			return nil, err
		}
		col := t.Columns[setIdx[i]]
		if d, err = castDatum(d, col.Type); err != nil {
			ee := AsError(err)
			if ee.Field == "" {
				ee.Field = col.Name
			}
			return nil, ee
		}
		if col.NotNull && d.IsNull() {
			return nil, &Error{Code: CodeNotNull, Field: col.Name,
				Msg: fmt.Sprintf("NULL value in NOT NULL column %s", col.Name)}
		}
		newRow[setIdx[i]] = d
	}
	return newRow, nil
}

func (e *Engine) execDelete(s *sqlparse.DeleteStmt) (*Result, error) {
	t, err := e.Catalog.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	tQual := strings.ToLower(s.Alias)
	if tQual == "" {
		tQual = strings.ToLower(s.Table.Name)
	}
	targetCols := make([]frameCol, len(t.Columns))
	for i, c := range t.Columns {
		targetCols[i] = frameCol{qual: tQual, name: strings.ToLower(c.Name)}
	}
	var src *rowSource
	if len(s.Using) > 0 {
		if src, err = e.buildFrom(s.Using, nil); err != nil {
			return nil, err
		}
	}
	ctx := &evalCtx{eng: e}

	t.mu.Lock()
	defer t.mu.Unlock()
	var kept [][]Datum
	deleted := int64(0)
	for _, row := range t.rows {
		match := false
		if src == nil {
			if s.Where == nil {
				match = true
			} else {
				f := &frame{cols: targetCols, row: row}
				d, err := e.eval(ctx, s.Where, f)
				if err != nil {
					return nil, err
				}
				match = !d.IsNull() && d.Kind == KBool && d.Bool
			}
		} else {
			for _, srow := range src.rows {
				cols := append(append([]frameCol{}, targetCols...), src.cols...)
				joined := make([]Datum, 0, len(row)+len(srow))
				joined = append(joined, row...)
				joined = append(joined, srow...)
				f := &frame{cols: cols, row: joined}
				if s.Where == nil {
					match = true
					break
				}
				d, err := e.eval(ctx, s.Where, f)
				if err != nil {
					return nil, err
				}
				if !d.IsNull() && d.Kind == KBool && d.Bool {
					match = true
					break
				}
			}
		}
		if match {
			deleted++
		} else {
			kept = append(kept, row)
		}
	}
	t.rows = kept
	return &Result{Activity: deleted}, nil
}
