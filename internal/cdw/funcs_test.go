package cdw

import (
	"strings"
	"testing"
)

// evalScalar evaluates a single scalar expression through the SQL surface.
func evalScalar(t *testing.T, e *Engine, expr string) Datum {
	t.Helper()
	rows := q(t, e, "SELECT "+expr)
	if len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("scalar %q returned %v", expr, rows)
	}
	return rows[0][0]
}

func TestDatetimeFormatModel(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		expr, want string
	}{
		{"to_char(to_date('2023-06-30', 'YYYY-MM-DD'), 'YYYY/MM/DD')", "2023/06/30"},
		{"to_char(to_date('2023-06-30', 'YYYY-MM-DD'), 'DD.MM.YY')", "30.06.23"},
		{"to_char(to_timestamp('2023-06-30 13:04:05', 'YYYY-MM-DD HH24:MI:SS'), 'HH24:MI:SS')", "13:04:05"},
		{"to_char(to_date('23-06-30', 'YY-MM-DD'), 'YYYY-MM-DD')", "2023-06-30"},
	}
	for _, c := range cases {
		if got := evalScalar(t, e, c.expr).Render(); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	for _, bad := range []string{
		"to_date('2023-6-30x', 'YYYY-MM-DD')",                          // trailing input
		"to_date('2023/06/30', 'YYYY-MM-DD')",                          // literal mismatch
		"to_date('2023-13-01', 'YYYY-MM-DD')",                          // month range
		"to_timestamp('2023-06-30 25:00:00', 'YYYY-MM-DD HH24:MI:SS')", // hour range
	} {
		if _, err := e.ExecSQL("SELECT " + bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestNumericFunctions(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		expr string
		want float64
	}{
		{"abs(-4.5)", 4.5},
		{"round(2.567, 2)", 2.57},
		{"round(25.5)", 26},
		{"floor(2.9)", 2},
		{"ceil(2.1)", 3},
		{"sqrt(16)", 4},
		{"mod(10, 3)", 1},
	}
	for _, c := range cases {
		d := evalScalar(t, e, c.expr)
		if d.asFloat() != c.want {
			t.Errorf("%s = %v, want %v", c.expr, d.asFloat(), c.want)
		}
	}
	if _, err := e.ExecSQL("SELECT sqrt(-1)"); err == nil {
		t.Error("sqrt(-1) accepted")
	}
	if got := evalScalar(t, e, "abs(-7)"); got.Kind != KInt || got.I != 7 {
		t.Errorf("abs int: %+v", got)
	}
}

func TestGreatestLeastZeroifnull(t *testing.T) {
	e := newTestEngine(t)
	if d := evalScalar(t, e, "greatest(3, 9, 1)"); d.I != 9 {
		t.Errorf("greatest = %+v", d)
	}
	if d := evalScalar(t, e, "least('b', 'a', 'c')"); d.S != "a" {
		t.Errorf("least = %+v", d)
	}
	if d := evalScalar(t, e, "greatest(1, NULL, 3)"); !d.IsNull() {
		t.Errorf("greatest with NULL = %+v", d)
	}
	if d := evalScalar(t, e, "zeroifnull(NULL)"); d.I != 0 {
		t.Errorf("zeroifnull = %+v", d)
	}
	if d := evalScalar(t, e, "zeroifnull(7)"); d.I != 7 {
		t.Errorf("zeroifnull(7) = %+v", d)
	}
}

func TestStringEdgeCases(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		expr, want string
	}{
		{"substring('abc', 0, 2)", "a"},    // pre-1 start consumes length
		{"substring('abc', -1, 3)", "a"},   // ditto
		{"substring('abc', 9)", ""},        // past the end
		{"substr('abc', 2, 0)", ""},        // zero length
		{"lpad('xyz', 2, '0')", "xy"},      // pad target shorter than input truncates
		{"replace('aaa', '', 'b')", "aaa"}, // empty needle is a no-op
		{"reverse('abc')", "cba"},
		{"concat('a', 1, 'b')", "a1b"},
		{"trim('  x  ') || rtrim('y  ') || ltrim('  z')", "xyz"},
	}
	for _, c := range cases {
		if got := evalScalar(t, e, c.expr); got.S != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got.S, c.want)
		}
	}
	if d := evalScalar(t, e, "upper(NULL)"); !d.IsNull() {
		t.Errorf("upper(NULL) = %+v", d)
	}
	if d := evalScalar(t, e, "length('')"); d.I != 0 {
		t.Errorf("length('') = %+v", d)
	}
}

func TestFunctionArityErrors(t *testing.T) {
	e := newTestEngine(t)
	for _, bad := range []string{
		"trim()", "trim('a', 'b')", "nullif(1)", "substring('a')",
		"lpad('a', 2)", "to_date('x')", "wat(1)",
	} {
		if _, err := e.ExecSQL("SELECT " + bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	ee := AsError(func() error { _, err := e.ExecSQL("SELECT wat(1)"); return err }())
	if ee.Code != CodeUnsupported || !strings.Contains(ee.Msg, "WAT") {
		t.Errorf("unknown function error: %+v", ee)
	}
}

func TestDateArithmetic(t *testing.T) {
	e := newTestEngine(t)
	if d := evalScalar(t, e, "DATE '2020-03-01' - DATE '2020-02-01'"); d.I != 29 {
		t.Errorf("date diff = %+v (2020 is a leap year)", d)
	}
	if d := evalScalar(t, e, "DATE '2020-02-28' + 2"); d.Render() != "2020-03-01" {
		t.Errorf("date + int = %v", d.Render())
	}
	if d := evalScalar(t, e, "add_months(DATE '2020-11-15', 3)"); d.Render() != "2021-02-15" {
		t.Errorf("add_months = %v", d.Render())
	}
	if d := evalScalar(t, e, "month(DATE '2020-11-15') * 100 + day(DATE '2020-11-15')"); d.I != 1115 {
		t.Errorf("month/day = %+v", d)
	}
}
