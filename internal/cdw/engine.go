package cdw

import (
	"sync/atomic"
	"time"

	"etlvirt/internal/cloudstore"
	"etlvirt/internal/sqlparse"
)

// Options configures engine semantics. The two presets capture the paper's
// contrast between the legacy EDW and the CDW:
//
//   - The CDW preset (default) runs set-oriented: a failing DML statement
//     aborts as a unit, reports no row numbers, and declared uniqueness
//     constraints are NOT enforced.
//   - The EDW preset (used by internal/edw) enforces uniqueness and exposes
//     per-row error detail, enabling native tuple-at-a-time error handling.
type Options struct {
	// EnforceUniqueness makes INSERTs reject primary-key and unique-constraint
	// duplicates. CDWs typically treat these constraints as metadata only.
	EnforceUniqueness bool
	// RowDetail annotates DML errors with the 1-based input row when known.
	// The CDW runs with this off: errors surface at statement granularity.
	RowDetail bool
	// Now supplies the clock for CURRENT_DATE/CURRENT_TIMESTAMP. Nil uses
	// time.Now.
	Now func() time.Time
	// StmtOverhead simulates the per-statement round-trip and scheduling cost
	// of a real cloud warehouse. Zero disables it.
	StmtOverhead time.Duration
}

// Engine is one CDW (or EDW) database instance.
type Engine struct {
	Catalog *Catalog
	Store   cloudstore.Store // source for COPY INTO; may be nil
	opts    Options

	stmtCount atomic.Int64
}

// NewEngine returns an engine with the given options.
func NewEngine(store cloudstore.Store, opts Options) *Engine {
	return &Engine{Catalog: NewCatalog(), Store: store, opts: opts}
}

func (e *Engine) now() time.Time {
	if e.opts.Now != nil {
		return e.opts.Now()
	}
	return time.Now()
}

// StmtCount returns the number of statements executed (benchmarking aid).
func (e *Engine) StmtCount() int64 { return e.stmtCount.Load() }

// ResultCol describes one output column.
type ResultCol struct {
	Name string
	Type ColType
}

// Result is the outcome of one statement.
type Result struct {
	Columns  []ResultCol
	Rows     [][]Datum
	Activity int64 // rows inserted/updated/deleted, or row count for SELECT
}

// ExecSQL parses and executes one statement written in the CDW dialect.
func (e *Engine) ExecSQL(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql, sqlparse.DialectCDW)
	if err != nil {
		return nil, errf(CodeSyntax, "%v", err)
	}
	return e.Exec(stmt)
}

// Exec executes a parsed statement.
func (e *Engine) Exec(stmt sqlparse.Stmt) (*Result, error) {
	e.stmtCount.Add(1)
	if e.opts.StmtOverhead > 0 {
		time.Sleep(e.opts.StmtOverhead)
	}
	var res *Result
	var err error
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		res, err = e.execSelectTop(s)
	case *sqlparse.InsertStmt:
		res, err = e.execInsert(s)
	case *sqlparse.UpdateStmt:
		res, err = e.execUpdate(s)
	case *sqlparse.DeleteStmt:
		res, err = e.execDelete(s)
	case *sqlparse.CreateTableStmt:
		res, err = e.execCreate(s)
	case *sqlparse.DropTableStmt:
		err = e.Catalog.Drop(s.Table, s.IfExists)
		res = &Result{}
	case *sqlparse.TruncateStmt:
		res, err = e.execTruncate(s)
	case *sqlparse.CopyStmt:
		res, err = e.execCopy(s)
	default:
		return nil, errf(CodeUnsupported, "unsupported statement %T", stmt)
	}
	if err != nil && !e.opts.RowDetail {
		err = scrubRowDetail(err)
	}
	return res, err
}

func (e *Engine) execCreate(s *sqlparse.CreateTableStmt) (*Result, error) {
	t := &Table{Name: s.Table}
	for _, cd := range s.Columns {
		ct, err := ResolveType(cd.Type)
		if err != nil {
			return nil, err
		}
		t.Columns = append(t.Columns, Column{
			Name: cd.Name, Type: ct, NotNull: cd.NotNull, Default: cd.Default,
		})
	}
	resolve := func(names []string) ([]int, error) {
		idx := make([]int, len(names))
		for i, n := range names {
			j := t.ColIndex(n)
			if j < 0 {
				return nil, errf(CodeNoSuchColumn, "constraint column %s does not exist", n)
			}
			idx[i] = j
		}
		return idx, nil
	}
	if len(s.PrimaryKey) > 0 {
		pk, err := resolve(s.PrimaryKey)
		if err != nil {
			return nil, err
		}
		t.PrimaryKey = pk
	}
	for _, u := range s.Unique {
		ui, err := resolve(u)
		if err != nil {
			return nil, err
		}
		t.Unique = append(t.Unique, ui)
	}
	if err := e.Catalog.Create(t, s.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// TableMeta describes a table for clients (column names/types and the
// declared — possibly unenforced — key constraints).
type TableMeta struct {
	Name       sqlparse.TableName
	Columns    []ResultCol
	NotNull    []bool
	PrimaryKey []string
	Unique     [][]string
	Rows       int
}

// Describe returns metadata for a table. The virtualizer uses the declared
// primary key to emulate uniqueness enforcement (§7).
func (e *Engine) Describe(tn sqlparse.TableName) (*TableMeta, error) {
	t, err := e.Catalog.Lookup(tn)
	if err != nil {
		return nil, err
	}
	m := &TableMeta{Name: t.Name, Rows: t.RowCount()}
	for _, c := range t.Columns {
		m.Columns = append(m.Columns, ResultCol{Name: c.Name, Type: c.Type})
		m.NotNull = append(m.NotNull, c.NotNull)
	}
	for _, i := range t.PrimaryKey {
		m.PrimaryKey = append(m.PrimaryKey, t.Columns[i].Name)
	}
	for _, u := range t.Unique {
		var cols []string
		for _, i := range u {
			cols = append(cols, t.Columns[i].Name)
		}
		m.Unique = append(m.Unique, cols)
	}
	return m, nil
}

func (e *Engine) execTruncate(s *sqlparse.TruncateStmt) (*Result, error) {
	t, err := e.Catalog.Lookup(s.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	n := len(t.rows)
	t.rows = nil
	t.mu.Unlock()
	return &Result{Activity: int64(n)}, nil
}
