package cdw

import (
	"strings"
	"testing"
)

// TestHash64Scalar pins the properties scrub relies on: determinism, NULL
// propagation, sensitivity to value changes, and representation-insensitive
// equality (DECIMAL scale, integer vs float of equal value hash alike only
// when their canonical group keys agree).
func TestHash64Scalar(t *testing.T) {
	e := newTestEngine(t)
	a := evalScalar(t, e, "hash64('Smith')")
	b := evalScalar(t, e, "hash64('Smith')")
	if a.Kind != KInt || a.I != b.I {
		t.Fatalf("hash64 not deterministic: %+v vs %+v", a, b)
	}
	if c := evalScalar(t, e, "hash64('Smith ')"); c.I == a.I {
		t.Errorf("hash64 ignored a trailing space: %d", c.I)
	}
	if d := evalScalar(t, e, "hash64(NULL)"); !d.IsNull() {
		t.Errorf("hash64(NULL) = %+v, want NULL", d)
	}
	// DECIMAL values equal after scale normalization must hash equally —
	// GroupKey canonicalization is what makes cross-representation
	// checksums comparable.
	x := evalScalar(t, e, "hash64(cast(1.50 as decimal(9,2)))")
	y := evalScalar(t, e, "hash64(cast(1.5 as decimal(5,1)))")
	if x.I != y.I {
		t.Errorf("hash64 decimal scale-sensitive: %d vs %d", x.I, y.I)
	}
	if _, err := e.ExecSQL("SELECT hash64(1, 2)"); err == nil {
		t.Error("hash64 with two arguments accepted")
	}
}

// TestXorAggChecksum pins the aggregate's order insensitivity, NULL handling
// and empty-input semantics.
func TestXorAggChecksum(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE t (id INTEGER, name VARCHAR(10))")
	mustExec(t, e, "INSERT INTO t VALUES (1, 'a')")
	mustExec(t, e, "INSERT INTO t VALUES (2, 'b')")
	mustExec(t, e, "INSERT INTO t VALUES (3, NULL)")

	mustExec(t, e, "CREATE TABLE r (id INTEGER, name VARCHAR(10))")
	mustExec(t, e, "INSERT INTO r VALUES (3, NULL)")
	mustExec(t, e, "INSERT INTO r VALUES (2, 'b')")
	mustExec(t, e, "INSERT INTO r VALUES (1, 'a')")

	sum := func(table string) string {
		rows := q(t, e, "SELECT COUNT(*), COUNT(name), XOR_AGG(HASH64(name)) FROM "+table)
		var parts []string
		for _, d := range rows[0] {
			parts = append(parts, d.Render())
		}
		return strings.Join(parts, "|")
	}
	if sum("t") != sum("r") {
		t.Errorf("order-sensitive checksum: %q vs %q", sum("t"), sum("r"))
	}

	// A single-cell difference must move the column checksum.
	mustExec(t, e, "UPDATE r SET name = 'B' WHERE id = 2")
	if sum("t") == sum("r") {
		t.Error("checksum blind to a single-cell mutation")
	}

	// Empty input yields NULL, like SUM; all-NULL column likewise.
	rows := q(t, e, "SELECT XOR_AGG(HASH64(name)) FROM t WHERE id > 99")
	if !rows[0][0].IsNull() {
		t.Errorf("empty XOR_AGG = %+v, want NULL", rows[0][0])
	}
	rows = q(t, e, "SELECT XOR_AGG(HASH64(name)) FROM t WHERE name IS NULL")
	if !rows[0][0].IsNull() {
		t.Errorf("all-NULL XOR_AGG = %+v, want NULL", rows[0][0])
	}

	// Non-integer input is a type error, not silent coercion.
	if _, err := e.ExecSQL("SELECT XOR_AGG(name) FROM t"); err == nil {
		t.Error("XOR_AGG over strings accepted")
	}
}
