package cdw

import "fmt"

// Error codes. The values deliberately mirror the legacy warehouse's error
// numbering where the paper references specific codes (2666 for DATE
// conversion in Figure 5, 2794 for uniqueness violations), so that error
// tables populated through the virtualizer read like legacy ones.
const (
	CodeInternal     = 1000
	CodeSyntax       = 3706
	CodeNoSuchObject = 3807
	CodeObjectExists = 3803
	CodeNoSuchColumn = 3810
	CodeDateConv     = 2666 // invalid date / date conversion failure
	CodeBadNumeric   = 2617 // numeric conversion/overflow
	CodeStringTrunc  = 3996 // string too long for column
	CodeNotNull      = 3604 // NULL in NOT NULL column
	CodeUniqueness   = 2794 // duplicate key (legacy code used in Figure 5)
	CodeFieldCount   = 2673 // wrong number of fields in a record
	CodeDivByZero    = 2618
	CodeTypeMismatch = 3569
	CodeMaxErrors    = 9057 // adaptive error handling budget exhausted (Figure 6)
	CodeCopyFailed   = 9100
	CodeUnsupported  = 5315
)

// Error is an engine error. Row carries the 1-based source row sequence when
// the engine is configured to expose row detail; -1 otherwise. The CDW runs
// with row detail off — statements fail as a unit without telling the caller
// which row was at fault, which is precisely why the virtualizer needs
// adaptive splitting (§7).
type Error struct {
	Code  int
	Msg   string
	Field string // offending column/field name when known
	Row   int64  // 1-based source row, or -1/0 when unknown
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("error %d on %s: %s", e.Code, e.Field, e.Msg)
	}
	return fmt.Sprintf("error %d: %s", e.Code, e.Msg)
}

// errf builds an *Error with formatting.
func errf(code int, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// AsError extracts an *Error from err, or wraps it as an internal error.
func AsError(err error) *Error {
	if err == nil {
		return nil
	}
	if e, ok := err.(*Error); ok {
		return e
	}
	return &Error{Code: CodeInternal, Msg: err.Error()}
}

// scrubRowDetail removes per-row attribution from an error, modelling the
// set-oriented CDW behaviour of reporting failures at statement granularity.
func scrubRowDetail(err error) error {
	if e, ok := err.(*Error); ok && e.Row != 0 {
		clone := *e
		clone.Row = 0
		return &clone
	}
	return err
}
