package edw_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/edw"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
)

const figure5Data = `123|Smith|2012-01-01
456|Brown|xxxx
789|Brown|yyyyy
123|Jones|2012-12-01
157|Jones|2012-12-01
`

const customerDDL = `CREATE TABLE PROD.CUSTOMER (
	CUST_ID VARCHAR(5) NOT NULL,
	CUST_NAME VARCHAR(50),
	JOIN_DATE DATE,
	PRIMARY KEY (CUST_ID))`

const example21 = `
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
	format vartext '|' layout CustLayout
	apply InsApply;
.end load;
`

func startEDW(t *testing.T) (*edw.Server, string) {
	t.Helper()
	srv := edw.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func run(t *testing.T, addr, script string, files map[string]string) *etlclient.Result {
	t.Helper()
	s, err := etlscript.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	res, err := etlclient.Run(s, etlclient.Options{
		Addr:         addr,
		ChunkRecords: 2,
		ReadFile: func(name string) ([]byte, error) {
			data, ok := files[name]
			if !ok {
				return nil, fmt.Errorf("no file %q", name)
			}
			return []byte(data), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFigure5LegacySemantics runs Example 2.1 natively on the legacy EDW and
// checks the Figure 5 outcome: the EDW is the semantic ground truth the
// virtualizer is later compared against.
func TestFigure5LegacySemantics(t *testing.T) {
	srv, addr := startEDW(t)
	eng := srv.Engine()
	if _, err := eng.ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	res := run(t, addr, example21, map[string]string{"input.txt": figure5Data})
	ir := res.Imports[0]
	if ir.Inserted != 2 || ir.ErrorsET != 2 || ir.ErrorsUV != 1 {
		t.Errorf("result: %+v", ir)
	}
	rows, err := eng.ExecSQL("SELECT cust_id FROM PROD.CUSTOMER ORDER BY cust_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 || rows.Rows[0][0].S != "123" || rows.Rows[1][0].S != "157" {
		t.Errorf("target: %v", rows.Rows)
	}
	et, _ := eng.ExecSQL("SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_ET ORDER BY SEQNO")
	if len(et.Rows) != 2 || et.Rows[0][0].I != 2 || et.Rows[1][0].I != 3 {
		t.Errorf("ET: %v", et.Rows)
	}
	uv, _ := eng.ExecSQL("SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_UV")
	if len(uv.Rows) != 1 || uv.Rows[0][0].I != 4 || uv.Rows[0][1].I != cdw.CodeUniqueness {
		t.Errorf("UV: %v", uv.Rows)
	}
}

// tableState extracts a canonical, comparable representation of a table.
func tableState(t *testing.T, eng *cdw.Engine, sql string) []string {
	t.Helper()
	res, err := eng.ExecSQL(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var out []string
	for _, row := range res.Rows {
		var parts []string
		for _, d := range row {
			parts = append(parts, d.Render())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// TestOracleEquivalence is the paper's transparency claim as an executable
// assertion: the same unmodified script, run natively against the legacy EDW
// and through the virtualizer against the CDW, must produce the same target
// table and the same error-table entries.
func TestOracleEquivalence(t *testing.T) {
	// legacy side
	edwSrv, edwAddr := startEDW(t)
	if _, err := edwSrv.Engine().ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	legacyRes := run(t, edwAddr, example21, map[string]string{"input.txt": figure5Data})

	// virtualized side
	store := cloudstore.NewMemStore()
	cdwEng := cdw.NewEngine(store, cdw.Options{})
	cdwSrv := cdwnet.NewServer(cdwEng)
	cdwAddr, err := cdwSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cdwSrv.Close() })
	node := core.NewNode(core.Config{CDWAddr: cdwAddr}, store)
	nodeAddr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	if _, err := cdwEng.ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	virtRes := run(t, nodeAddr, example21, map[string]string{"input.txt": figure5Data})

	// job-level outcome equality
	l, v := legacyRes.Imports[0], virtRes.Imports[0]
	if l.Inserted != v.Inserted || l.ErrorsET != v.ErrorsET || l.ErrorsUV != v.ErrorsUV {
		t.Errorf("job outcomes differ: legacy %+v vs virtualized %+v", l, v)
	}

	// table-state equality
	target := "SELECT CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER"
	if got, want := tableState(t, cdwEng, target), tableState(t, edwSrv.Engine(), target); !equal(got, want) {
		t.Errorf("target tables differ:\n cdw: %v\n edw: %v", got, want)
	}
	errq := "SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_ET"
	if got, want := tableState(t, cdwEng, errq), tableState(t, edwSrv.Engine(), errq); !equal(got, want) {
		t.Errorf("ET tables differ:\n cdw: %v\n edw: %v", got, want)
	}
	uvq := "SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_UV"
	if got, want := tableState(t, cdwEng, uvq), tableState(t, edwSrv.Engine(), uvq); !equal(got, want) {
		t.Errorf("UV tables differ:\n cdw: %v\n edw: %v", got, want)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOracleEquivalenceRandomized fuzzes the equivalence over generated
// inputs with mixed error types.
func TestOracleEquivalenceRandomized(t *testing.T) {
	gen := func(seed int) string {
		var sb strings.Builder
		for i := 0; i < 60; i++ {
			id := (seed*31 + i*7) % 40 // collisions across rows -> UV errors
			date := "2020-01-15"
			if (i+seed)%9 == 0 {
				date = "not-a-date" // -> ET errors
			}
			fmt.Fprintf(&sb, "%d|Name %d|%s\n", id, i, date)
		}
		return sb.String()
	}
	for seed := 0; seed < 3; seed++ {
		data := gen(seed)

		edwSrv, edwAddr := startEDW(t)
		if _, err := edwSrv.Engine().ExecSQL(customerDDL); err != nil {
			t.Fatal(err)
		}
		legacyRes := run(t, edwAddr, example21, map[string]string{"input.txt": data})

		store := cloudstore.NewMemStore()
		cdwEng := cdw.NewEngine(store, cdw.Options{})
		cdwSrv := cdwnet.NewServer(cdwEng)
		cdwAddr, _ := cdwSrv.Listen("127.0.0.1:0")
		t.Cleanup(func() { cdwSrv.Close() })
		node := core.NewNode(core.Config{CDWAddr: cdwAddr}, store)
		nodeAddr, _ := node.Listen("127.0.0.1:0")
		t.Cleanup(func() { node.Close() })
		if _, err := cdwEng.ExecSQL(customerDDL); err != nil {
			t.Fatal(err)
		}
		virtRes := run(t, nodeAddr, example21, map[string]string{"input.txt": data})

		l, v := legacyRes.Imports[0], virtRes.Imports[0]
		if l.Inserted != v.Inserted || l.ErrorsET != v.ErrorsET || l.ErrorsUV != v.ErrorsUV {
			t.Errorf("seed %d: outcomes differ: legacy %+v vs virt %+v", seed, l, v)
		}
		target := "SELECT CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER"
		if got, want := tableState(t, cdwEng, target), tableState(t, edwSrv.Engine(), target); !equal(got, want) {
			t.Errorf("seed %d: targets differ:\n cdw: %v\n edw: %v", seed, got, want)
		}
		errq := "SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_ET"
		if got, want := tableState(t, cdwEng, errq), tableState(t, edwSrv.Engine(), errq); !equal(got, want) {
			t.Errorf("seed %d: ET differ:\n cdw: %v\n edw: %v", seed, got, want)
		}
		uvq := "SELECT SEQNO, ERRCODE FROM PROD.CUSTOMER_UV"
		if got, want := tableState(t, cdwEng, uvq), tableState(t, edwSrv.Engine(), uvq); !equal(got, want) {
			t.Errorf("seed %d: UV differ:\n cdw: %v\n edw: %v", seed, got, want)
		}
	}
}

// TestEDWExportAndRunSQL exercises the legacy server's export and ad-hoc SQL
// paths.
func TestEDWExportAndRunSQL(t *testing.T) {
	srv, addr := startEDW(t)
	lg := etlscript.Logon{User: "u", Password: "p"}
	if _, err := etlclient.Exec(addr, lg, customerDDL); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := etlclient.Exec(addr, lg, fmt.Sprintf(
			"INSERT INTO PROD.CUSTOMER VALUES ('%02d', 'N%d', DATE '2020-01-01')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	_, rows, err := etlclient.QueryRows(addr, lg, "SEL TOP 3 CUST_ID FROM PROD.CUSTOMER ORDER BY CUST_ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].S != "00" {
		t.Errorf("query rows: %v", rows)
	}

	script := `
.logon h/u,p;
.begin export outfile out.txt format vartext '|' sessions 2;
SELECT CUST_ID, CUST_NAME FROM PROD.CUSTOMER ORDER BY CUST_ID;
.end export;
`
	s, err := etlscript.Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	res, err := etlclient.Run(s, etlclient.Options{
		Addr:      addr,
		WriteFile: func(name string, data []byte) error { out = data; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exports[0].Rows != 25 {
		t.Errorf("exported %d", res.Exports[0].Rows)
	}
	lines := strings.Split(strings.TrimSuffix(string(out), "\n"), "\n")
	if len(lines) != 25 || lines[0] != "00|N0" {
		t.Errorf("lines: %d, first %q", len(lines), lines[0])
	}
	_ = srv
}

// TestEDWSingletonApplyCost pins down that the EDW applies tuple-at-a-time:
// its statement count scales with rows (the Figure 11 baseline behaviour).
func TestEDWSingletonApplyCost(t *testing.T) {
	srv, addr := startEDW(t)
	if _, err := srv.Engine().ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	var data strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&data, "%d|N%d|2020-01-01\n", i, i)
	}
	before := srv.Engine().StmtCount()
	run(t, addr, example21, map[string]string{"input.txt": data.String()})
	applied := srv.Engine().StmtCount() - before
	if applied < 40 {
		t.Errorf("EDW apply issued %d statements for 40 rows; expected tuple-at-a-time", applied)
	}
}

// TestOracleEquivalenceUpsert runs the same upsert script against the
// legacy EDW and through the virtualizer and compares the results.
func TestOracleEquivalenceUpsert(t *testing.T) {
	const upsertScript = `
.logon host/user,pass;
.layout KV;
.field K varchar(5);
.field V varchar(50);
.field D varchar(10);
.begin import tables PROD.CUSTOMER errortables PROD.UP_ET PROD.UP_UV;
.dml label Up;
update PROD.CUSTOMER set CUST_NAME = trim(:V) where CUST_ID = trim(:K)
else insert into PROD.CUSTOMER values (trim(:K), trim(:V),
	cast(:D as DATE format 'YYYY-MM-DD'));
.import infile up.txt format vartext '|' layout KV apply Up;
.end load;
`
	seed := `INSERT INTO PROD.CUSTOMER VALUES
		('1', 'Old One', '2010-01-01'), ('2', 'Old Two', '2010-01-02')`
	data := "1|New One|2020-01-01\n3|Three|2020-03-03\n2|New Two|xxxx\n4|Four|2020-04-04\n2|Again Two|2020-02-02\n"

	edwSrv, edwAddr := startEDW(t)
	if _, err := edwSrv.Engine().ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := edwSrv.Engine().ExecSQL(seed); err != nil {
		t.Fatal(err)
	}
	legacyRes := run(t, edwAddr, upsertScript, map[string]string{"up.txt": data})

	store := cloudstore.NewMemStore()
	cdwEng := cdw.NewEngine(store, cdw.Options{})
	cdwSrv := cdwnet.NewServer(cdwEng)
	cdwAddr, _ := cdwSrv.Listen("127.0.0.1:0")
	t.Cleanup(func() { cdwSrv.Close() })
	node := core.NewNode(core.Config{CDWAddr: cdwAddr}, store)
	nodeAddr, _ := node.Listen("127.0.0.1:0")
	t.Cleanup(func() { node.Close() })
	if _, err := cdwEng.ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := cdwEng.ExecSQL(seed); err != nil {
		t.Fatal(err)
	}
	virtRes := run(t, nodeAddr, upsertScript, map[string]string{"up.txt": data})

	l, v := legacyRes.Imports[0], virtRes.Imports[0]
	if l.Inserted != v.Inserted || l.Updated != v.Updated || l.ErrorsET != v.ErrorsET {
		t.Errorf("outcomes differ: legacy %+v vs virt %+v", l, v)
	}
	target := "SELECT CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER"
	if got, want := tableState(t, cdwEng, target), tableState(t, edwSrv.Engine(), target); !equal(got, want) {
		t.Errorf("targets differ:\n cdw: %v\n edw: %v", got, want)
	}
	errq := "SELECT SEQNO, ERRCODE FROM PROD.UP_ET"
	if got, want := tableState(t, cdwEng, errq), tableState(t, edwSrv.Engine(), errq); !equal(got, want) {
		t.Errorf("ET differ:\n cdw: %v\n edw: %v", got, want)
	}
}

// TestOracleEquivalenceExport runs the same export script against the
// legacy EDW and the virtualizer and compares the produced files.
func TestOracleEquivalenceExport(t *testing.T) {
	seed := `INSERT INTO PROD.CUSTOMER VALUES
		('3', 'Carol', '2012-03-03'),
		('1', 'Alice', '2012-01-01'),
		('2', NULL, '2012-02-02')`
	exportScript := `
.logon h/u,p;
.begin export outfile out.txt format vartext '|' sessions 2;
SEL CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER ORDER BY 1;
.end export;
`
	runExport := func(addr string) string {
		s, err := etlscript.Parse(exportScript)
		if err != nil {
			t.Fatal(err)
		}
		var out []byte
		_, err = etlclient.Run(s, etlclient.Options{
			Addr:      addr,
			WriteFile: func(name string, data []byte) error { out = data; return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	edwSrv, edwAddr := startEDW(t)
	if _, err := edwSrv.Engine().ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := edwSrv.Engine().ExecSQL(seed); err != nil {
		t.Fatal(err)
	}
	legacyOut := runExport(edwAddr)

	store := cloudstore.NewMemStore()
	cdwEng := cdw.NewEngine(store, cdw.Options{})
	cdwSrv := cdwnet.NewServer(cdwEng)
	cdwAddr, _ := cdwSrv.Listen("127.0.0.1:0")
	t.Cleanup(func() { cdwSrv.Close() })
	node := core.NewNode(core.Config{CDWAddr: cdwAddr}, store)
	nodeAddr, _ := node.Listen("127.0.0.1:0")
	t.Cleanup(func() { node.Close() })
	if _, err := cdwEng.ExecSQL(customerDDL); err != nil {
		t.Fatal(err)
	}
	if _, err := cdwEng.ExecSQL(seed); err != nil {
		t.Fatal(err)
	}
	virtOut := runExport(nodeAddr)

	if legacyOut != virtOut {
		t.Errorf("export files differ:\n legacy: %q\n virt:   %q", legacyOut, virtOut)
	}
	if !strings.HasPrefix(legacyOut, "1|Alice|2012-01-01\n2||2012-02-02\n") {
		t.Errorf("unexpected export content: %q", legacyOut)
	}
}
