// Package edw is the reference legacy Enterprise Data Warehouse: a server
// speaking the same wire protocol the virtualizer impersonates, but backed
// directly by a local engine with *legacy* semantics — enforced uniqueness
// constraints and native tuple-at-a-time DML application with per-tuple
// error capture (§2, §7 Figure 5).
//
// It serves two purposes in this repository:
//
//   - Correctness oracle: integration tests run the same ETL script against
//     the EDW and against the virtualizer+CDW, then compare target and error
//     tables — the paper's transparency claim, made executable.
//   - Baseline: its singleton-insert application path is the baseline system
//     of the error-handling experiment (§9 Figure 11).
package edw

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/convert"
	"etlvirt/internal/ltype"
	"etlvirt/internal/sqlparse"
	"etlvirt/internal/sqlxlate"
	"etlvirt/internal/wire"
)

// Server is one legacy EDW instance.
type Server struct {
	eng   *cdw.Engine
	store *cloudstore.MemStore // scratch space for staging loads

	ln     net.Listener
	connWG sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	jobs   map[uint64]*loadJob
	exps   map[uint64]*exportJob
	strms  map[uint64]*streamSess
	marks  map[string]int64 // durable per-stream-name commit watermark
	closed bool

	nextJob     atomic.Uint64
	nextSession atomic.Uint32
}

// NewServer creates an EDW with an empty catalog.
func NewServer() *Server {
	store := cloudstore.NewMemStore()
	eng := cdw.NewEngine(store, cdw.Options{
		EnforceUniqueness: true,
		RowDetail:         true,
	})
	return &Server{
		eng:   eng,
		store: store,
		conns: make(map[net.Conn]struct{}),
		jobs:  make(map[uint64]*loadJob),
		exps:  make(map[uint64]*exportJob),
		strms: make(map[uint64]*streamSess),
		marks: make(map[string]int64),
	}
}

// Engine exposes the underlying engine for test seeding.
func (s *Server) Engine() *cdw.Engine { return s.eng }

// Listen binds addr and starts accepting connections.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connWG.Wait()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		// Bounded by the connection, not a context: Close() closes every
		// live conn, which unblocks serveConn's reads and ends the goroutine.
		go func() { //nolint:goroleak // conn-bounded; Close() closes all conns
			defer s.connWG.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// loadJob is one import job on the legacy server. Acquisition converts and
// buffers records; the application phase is native tuple-at-a-time.
type loadJob struct {
	id    uint64
	req   *wire.BeginLoad
	conv  *convert.Converter
	tr    *sqlxlate.Translator
	stage sqlparse.TableName

	mu         sync.Mutex
	csv        bytes.Buffer
	maxSeq     int64
	rowsStaged int64
	dataErrors []convert.DataError
	staged     bool
}

// exportJob is one export job: the result set is materialized and served in
// chunk-sized slices.
type exportJob struct {
	id     uint64
	layout *ltype.Layout
	rows   [][]cdw.Datum
	format wire.DataFormat
	delim  byte
	chunk  int
}

const exportChunkRows = 4096

func (s *Server) serveConn(nc net.Conn) {
	c := wire.NewConn(nc)
	defer c.Close()
	m, _, err := c.Recv()
	if err != nil {
		return
	}
	if _, ok := m.(*wire.Logon); !ok {
		_ = c.Send(0, &wire.Failure{Code: 3001, Message: "expected logon"})
		return
	}
	session := s.nextSession.Add(1)
	if err := c.Send(session, &wire.LogonOK{SessionID: session, ServerVersion: "legacy-edw/7.2"}); err != nil {
		return
	}
	for {
		m, _, err := c.Recv()
		if err != nil {
			return
		}
		var replyErr error
		switch msg := m.(type) {
		case *wire.Logoff:
			return
		case *wire.RunSQL:
			replyErr = s.handleRunSQL(c, session, msg)
		case *wire.BeginLoad:
			replyErr = s.handleBeginLoad(c, session, msg)
		case *wire.AttachLoad:
			if _, ok := s.job(msg.JobID); !ok {
				replyErr = c.Send(session, &wire.Failure{Code: 3005, Message: "no such job"})
			} else {
				replyErr = c.Send(session, &wire.AttachOK{})
			}
		case *wire.DataChunk:
			replyErr = s.handleChunk(c, session, msg)
		case *wire.EndAcquire:
			replyErr = s.handleEndAcquire(c, session, msg)
		case *wire.ApplyDML:
			replyErr = s.handleApply(c, session, msg)
		case *wire.EndLoad:
			s.mu.Lock()
			j, ok := s.jobs[msg.JobID]
			delete(s.jobs, msg.JobID)
			s.mu.Unlock()
			if ok {
				_, _ = s.eng.Exec(&sqlparse.DropTableStmt{Table: j.stage, IfExists: true})
			}
			replyErr = c.Send(session, &wire.LoadDone{JobID: msg.JobID})
		case *wire.BeginStream:
			replyErr = s.handleBeginStream(c, session, msg)
		case *wire.DeltaFrame:
			replyErr = s.handleDeltaFrame(c, session, msg)
		case *wire.EndStream:
			replyErr = s.handleEndStream(c, session, msg)
		case *wire.BeginExport:
			replyErr = s.handleBeginExport(c, session, msg)
		case *wire.ExportChunkRq:
			replyErr = s.handleExportChunk(c, session, msg)
		case *wire.EndExport:
			s.mu.Lock()
			delete(s.exps, msg.JobID)
			s.mu.Unlock()
			replyErr = c.Send(session, &wire.LoadDone{JobID: msg.JobID})
		default:
			replyErr = c.Send(session, &wire.Failure{Code: 3003,
				Message: fmt.Sprintf("unexpected message %s", m.Kind())})
		}
		if replyErr != nil {
			return
		}
	}
}

func (s *Server) job(id uint64) (*loadJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// translator builds the statement rewriter used to execute legacy SQL on the
// internal engine. The "translation" here is not replatforming — it is the
// legacy server's own parser mapped onto our shared evaluator.
func (s *Server) translator() *sqlxlate.Translator {
	return &sqlxlate.Translator{}
}

func (s *Server) handleRunSQL(c *wire.Conn, session uint32, m *wire.RunSQL) error {
	cdwSQL, err := s.translator().Translate(m.SQL)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3706, Message: err.Error()})
	}
	res, err := s.eng.ExecSQL(cdwSQL)
	if err != nil {
		ee := cdw.AsError(err)
		return c.Send(session, &wire.Failure{Code: uint32(ee.Code), Message: ee.Msg})
	}
	if len(res.Columns) == 0 {
		return c.Send(session, &wire.StmtSuccess{ActivityCount: uint64(res.Activity)})
	}
	layout := layoutFromCols("result", res.Columns)
	if err := c.Send(session, &wire.RecordHeader{Layout: layout}); err != nil {
		return err
	}
	payload, err := encodeRows(res.Rows, layout, wire.FormatIndicator, 0)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 1000, Message: err.Error()})
	}
	if err := c.Send(session, &wire.Records{Count: uint32(len(res.Rows)), Payload: payload}); err != nil {
		return err
	}
	return c.Send(session, &wire.EndStatement{})
}

func (s *Server) handleBeginLoad(c *wire.Conn, session uint32, m *wire.BeginLoad) error {
	conv, err := convert.NewConverter(m.Layout, m.Format, m.Delim, convert.Options{})
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3004, Message: err.Error()})
	}
	id := s.nextJob.Add(1)
	j := &loadJob{
		id:    id,
		req:   m,
		conv:  conv,
		stage: sqlparse.TableName{Schema: "edw_work", Name: fmt.Sprintf("job_%d", id)},
	}
	j.tr = &sqlxlate.Translator{Stage: j.stage, StageAlias: "s", Layout: m.Layout}

	ddl, err := sqlxlate.StagingDDL(j.stage, m.Layout)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3004, Message: err.Error()})
	}
	stmts := []string{ddl}
	for _, et := range []string{m.ErrTableET, m.ErrTableUV} {
		if et == "" {
			continue
		}
		etDDL, err := sqlxlate.ErrorTableDDL(parseName(et))
		if err != nil {
			return c.Send(session, &wire.Failure{Code: 3004, Message: err.Error()})
		}
		drop, _ := sqlparse.Print(&sqlparse.DropTableStmt{Table: parseName(et), IfExists: true}, sqlparse.DialectCDW)
		stmts = append(stmts, drop, etDDL)
	}
	for _, st := range stmts {
		if _, err := s.eng.ExecSQL(st); err != nil {
			return c.Send(session, &wire.Failure{Code: 3004, Message: err.Error()})
		}
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	return c.Send(session, &wire.LoadOK{JobID: id})
}

func parseName(s string) sqlparse.TableName {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return sqlparse.TableName{Schema: s[:i], Name: s[i+1:]}
	}
	return sqlparse.TableName{Name: s}
}

// handleChunk converts and buffers one chunk synchronously — the legacy
// server caches raw data until the client says what to do with it (§2).
func (s *Server) handleChunk(c *wire.Conn, session uint32, m *wire.DataChunk) error {
	j, ok := s.job(m.JobID)
	if !ok {
		return c.Send(session, &wire.Failure{Code: 3005, Message: "no such job"})
	}
	res, err := j.conv.Convert(m.Payload, int64(m.FirstRow))
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 2675, Message: err.Error()})
	}
	j.mu.Lock()
	j.csv.Write(res.CSV)
	j.rowsStaged += int64(res.Rows)
	j.dataErrors = append(j.dataErrors, res.Errors...)
	if top := int64(m.FirstRow) + int64(m.Count) - 1; top > j.maxSeq {
		j.maxSeq = top
	}
	j.mu.Unlock()
	return c.Send(session, &wire.ChunkAck{Seq: m.Seq})
}

func (s *Server) handleEndAcquire(c *wire.Conn, session uint32, m *wire.EndAcquire) error {
	j, ok := s.job(m.JobID)
	if !ok {
		return c.Send(session, &wire.Failure{Code: 3005, Message: "no such job"})
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.staged {
		key := fmt.Sprintf("edw/job%d.csv", j.id)
		if err := s.store.Put(key, bytes.NewReader(j.csv.Bytes())); err != nil {
			return c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()})
		}
		copySQL, _ := sqlparse.Print(&sqlparse.CopyStmt{
			Table: j.stage, From: "store://" + key,
			Options: map[string]string{"format": "csv"},
		}, sqlparse.DialectCDW)
		if _, err := s.eng.ExecSQL(copySQL); err != nil {
			return c.Send(session, &wire.Failure{Code: 3006, Message: cdw.AsError(err).Msg})
		}
		_ = s.store.Delete(key)
		// record acquisition data errors
		for _, de := range j.dataErrors {
			if err := s.recordError(j.req.ErrTableET, de.Row, de.Row, de.Code, de.Field, de.Msg); err != nil {
				return c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()})
			}
		}
		j.staged = true
	}
	return c.Send(session, &wire.AcquireDone{
		JobID:      j.id,
		RowsStaged: uint64(j.rowsStaged),
		DataErrors: uint64(len(j.dataErrors)),
	})
}

func (s *Server) recordError(table string, lo, hi int64, code int, field, msg string) error {
	if table == "" {
		return nil
	}
	ins := &sqlparse.InsertStmt{
		Table: parseName(table),
		Rows: [][]sqlparse.Expr{{
			&sqlparse.Literal{Kind: sqlparse.LitInt, Int: lo},
			&sqlparse.Literal{Kind: sqlparse.LitInt, Int: hi},
			&sqlparse.Literal{Kind: sqlparse.LitInt, Int: int64(code)},
			&sqlparse.Literal{Kind: sqlparse.LitString, Str: field},
			&sqlparse.Literal{Kind: sqlparse.LitString, Str: msg},
		}},
	}
	_, err := s.eng.Exec(ins)
	return err
}

// handleApply is the legacy application phase: tuple-at-a-time with native
// per-tuple error capture — also the singleton-insert baseline of Figure 11.
func (s *Server) handleApply(c *wire.Conn, session uint32, m *wire.ApplyDML) error {
	j, ok := s.job(m.JobID)
	if !ok {
		return c.Send(session, &wire.Failure{Code: 3005, Message: "no such job"})
	}
	dml, err := j.tr.TranslateDML(m.SQL)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3706, Message: err.Error()})
	}
	target := dml.Target.String()
	var inserted, updated, deleted, errsET, errsUV int64
	j.mu.Lock()
	maxSeq := j.maxSeq
	j.mu.Unlock()
	for seq := int64(1); seq <= maxSeq; seq++ {
		sql, err := dml.Apply.SQL(seq, seq)
		if err != nil {
			return c.Send(session, &wire.Failure{Code: 1000, Message: err.Error()})
		}
		res, err := s.eng.ExecSQL(sql)
		var res2 *cdw.Result
		if err == nil && dml.ApplySecond != nil {
			// upsert: the guarded INSERT half for this tuple
			var sql2 string
			if sql2, err = dml.ApplySecond.SQL(seq, seq); err != nil {
				return c.Send(session, &wire.Failure{Code: 1000, Message: err.Error()})
			}
			res2, err = s.eng.ExecSQL(sql2)
		}
		if err != nil {
			ee := cdw.AsError(err)
			switch ee.Code {
			case cdw.CodeNoSuchObject, cdw.CodeNoSuchColumn, cdw.CodeSyntax,
				cdw.CodeUnsupported, cdw.CodeInternal:
				return c.Send(session, &wire.Failure{Code: uint32(ee.Code), Message: ee.Msg})
			}
			table := j.req.ErrTableET
			msg := fmt.Sprintf("%s during DML on %s, row number: %d", ee.Msg, target, seq)
			if ee.Code == cdw.CodeUniqueness {
				table = j.req.ErrTableUV
				errsUV++
			} else {
				errsET++
			}
			if err := s.recordError(table, seq, seq, ee.Code, ee.Field, msg); err != nil {
				return c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()})
			}
			continue
		}
		switch dml.Kind {
		case sqlxlate.DMLInsert:
			inserted += res.Activity
		case sqlxlate.DMLUpdate:
			updated += res.Activity
		case sqlxlate.DMLDelete:
			deleted += res.Activity
		case sqlxlate.DMLUpsert:
			updated += res.Activity
			if res2 != nil {
				inserted += res2.Activity
			}
		}
	}
	return c.Send(session, &wire.ApplyResult{
		JobID:    j.id,
		Inserted: uint64(inserted), Updated: uint64(updated), Deleted: uint64(deleted),
		ErrorsET: uint64(errsET), ErrorsUV: uint64(errsUV),
	})
}

func (s *Server) handleBeginExport(c *wire.Conn, session uint32, m *wire.BeginExport) error {
	cdwSQL, err := s.translator().Translate(m.SQL)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3706, Message: err.Error()})
	}
	res, err := s.eng.ExecSQL(cdwSQL)
	if err != nil {
		ee := cdw.AsError(err)
		return c.Send(session, &wire.Failure{Code: uint32(ee.Code), Message: ee.Msg})
	}
	id := s.nextJob.Add(1)
	delim := m.Delim
	if delim == 0 {
		delim = '|'
	}
	j := &exportJob{
		id:     id,
		layout: layoutFromCols(fmt.Sprintf("export_%d", id), res.Columns),
		rows:   res.Rows,
		format: m.Format,
		delim:  delim,
		chunk:  exportChunkRows,
	}
	s.mu.Lock()
	s.exps[id] = j
	s.mu.Unlock()
	return c.Send(session, &wire.ExportOK{JobID: id, Layout: j.layout})
}

func (s *Server) handleExportChunk(c *wire.Conn, session uint32, m *wire.ExportChunkRq) error {
	s.mu.Lock()
	j, ok := s.exps[m.JobID]
	s.mu.Unlock()
	if !ok {
		return c.Send(session, &wire.Failure{Code: 3005, Message: "no such job"})
	}
	start := int(m.Seq) * j.chunk
	if start >= len(j.rows) {
		return c.Send(session, &wire.ExportChunk{JobID: j.id, Seq: m.Seq, EOF: true})
	}
	end := start + j.chunk
	if end > len(j.rows) {
		end = len(j.rows)
	}
	payload, err := encodeRows(j.rows[start:end], j.layout, j.format, j.delim)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 1000, Message: err.Error()})
	}
	return c.Send(session, &wire.ExportChunk{
		JobID: j.id, Seq: m.Seq, Count: uint32(end - start),
		EOF: end == len(j.rows), Payload: payload,
	})
}

// --- result encoding (legacy direction) ---

func layoutFromCols(name string, cols []cdw.ResultCol) *ltype.Layout {
	l := &ltype.Layout{Name: name}
	for _, c := range cols {
		l.Fields = append(l.Fields, ltype.Field{Name: c.Name, Type: colTypeToLegacy(c.Type)})
	}
	return l
}

func colTypeToLegacy(t cdw.ColType) ltype.Type {
	switch t.Kind {
	case cdw.KBool:
		return ltype.Simple(ltype.KindByteInt)
	case cdw.KInt:
		return ltype.Simple(ltype.KindBigInt)
	case cdw.KFloat:
		return ltype.Simple(ltype.KindFloat)
	case cdw.KDecimal:
		return ltype.Decimal(t.Precision, t.Scale)
	case cdw.KString:
		n := t.Length
		if n <= 0 {
			n = 4000
		}
		return ltype.VarChar(n)
	case cdw.KDate:
		return ltype.Simple(ltype.KindDate)
	case cdw.KTime:
		return ltype.Simple(ltype.KindTime)
	case cdw.KTimestamp:
		return ltype.Simple(ltype.KindTimestamp)
	case cdw.KBytes:
		n := t.Length
		if n <= 0 {
			n = 4000
		}
		return ltype.Type{Kind: ltype.KindVarByte, Length: n}
	default:
		return ltype.VarChar(4000)
	}
}

func encodeRows(rows [][]cdw.Datum, layout *ltype.Layout, format wire.DataFormat, delim byte) ([]byte, error) {
	var out []byte
	for _, row := range rows {
		rec := make(ltype.Record, len(row))
		for i, d := range row {
			v, err := datumToLegacy(d, layout.Fields[i].Type)
			if err != nil {
				return nil, err
			}
			rec[i] = v
		}
		if format == wire.FormatVartext {
			fields := make([]string, len(rec))
			for i, v := range rec {
				fields[i] = v.Text()
			}
			out = ltype.AppendVartext(out, fields, delim)
		} else {
			var err error
			out, err = ltype.EncodeRecord(out, layout, rec)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func datumToLegacy(d cdw.Datum, lt ltype.Type) (ltype.Value, error) {
	if d.IsNull() {
		return ltype.NullValue(lt.Kind), nil
	}
	switch lt.Kind {
	case ltype.KindByteInt, ltype.KindSmallInt, ltype.KindInteger, ltype.KindBigInt:
		if d.Kind == cdw.KInt {
			return ltype.IntValue(lt.Kind, d.I), nil
		}
		if d.Kind == cdw.KBool {
			if d.Bool {
				return ltype.IntValue(lt.Kind, 1), nil
			}
			return ltype.IntValue(lt.Kind, 0), nil
		}
	case ltype.KindFloat:
		if d.Kind == cdw.KFloat {
			return ltype.FloatValue(d.F), nil
		}
	case ltype.KindDecimal:
		if d.Kind == cdw.KDecimal {
			v := ltype.IntValue(ltype.KindDecimal, d.I)
			v.S = ltype.FormatDecimal(d.I, int(d.Scale))
			return v, nil
		}
	case ltype.KindChar, ltype.KindVarChar:
		return ltype.StringValue(lt.Kind, d.Render()), nil
	case ltype.KindDate:
		if d.Kind == cdw.KDate {
			t := time.Unix(d.I*86400, 0).UTC()
			return ltype.DateValue(t.Year(), int(t.Month()), t.Day()), nil
		}
	case ltype.KindTime:
		if d.Kind == cdw.KTime {
			return ltype.IntValue(ltype.KindTime, d.I), nil
		}
	case ltype.KindTimestamp:
		if d.Kind == cdw.KTimestamp {
			return ltype.StringValue(ltype.KindTimestamp,
				time.UnixMicro(d.I).UTC().Format("2006-01-02 15:04:05")), nil
		}
	case ltype.KindByte, ltype.KindVarByte:
		if d.Kind == cdw.KBytes {
			return ltype.BytesValue(lt.Kind, d.B), nil
		}
	}
	return ltype.Value{}, fmt.Errorf("edw: cannot convert %s to %s", d.Kind, lt.Kind)
}
