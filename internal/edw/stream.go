package edw

import (
	"bytes"
	"fmt"

	"etlvirt/internal/cdw"
	"etlvirt/internal/convert"
	"etlvirt/internal/sqlparse"
	"etlvirt/internal/sqlxlate"
	"etlvirt/internal/stream"
	"etlvirt/internal/wire"
)

// streamSess is one open CDC stream on the legacy server. The legacy EDW
// applies deltas the way it applies everything: tuple at a time, per-tuple
// error capture, in arrival order. Each frame is staged and applied
// synchronously before its ack — the reference semantics the virtualizer's
// micro-batched MERGE triple must reproduce.
type streamSess struct {
	id   uint64
	req  *wire.BeginStream
	conv *convert.Converter
	sd   *sqlxlate.StreamDML

	upsStage, delStage sqlparse.TableName

	watermark int64
	inserted  int64
	updated   int64
	deleted   int64
	errsET    int64
	replayed  int64
}

const streamFrameHint = 64

func (s *Server) stream(id uint64) (*streamSess, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.strms[id]
	return j, ok
}

func (s *Server) handleBeginStream(c *wire.Conn, session uint32, m *wire.BeginStream) error {
	if m.Layout == nil || m.Name == "" {
		return c.Send(session, &wire.Failure{Code: 3004, Message: "stream request needs a name and a layout"})
	}
	conv, err := convert.NewConverter(m.Layout, m.Format, m.Delim, convert.Options{})
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3004, Message: err.Error()})
	}
	id := s.nextJob.Add(1)
	j := &streamSess{
		id:       id,
		req:      m,
		conv:     conv,
		upsStage: sqlparse.TableName{Schema: "edw_work", Name: fmt.Sprintf("stream_%d_ups", id)},
		delStage: sqlparse.TableName{Schema: "edw_work", Name: fmt.Sprintf("stream_%d_del", id)},
	}
	tr := &sqlxlate.Translator{Stage: j.upsStage, StageAlias: "s", Layout: m.Layout}
	dml, err := tr.TranslateDML(m.SQL)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: 3706, Message: err.Error()})
	}
	if dml.Kind != sqlxlate.DMLInsert {
		return c.Send(session, &wire.Failure{Code: 3706, Message: "stream apply DML must be an INSERT"})
	}
	meta, err := s.eng.Describe(dml.Target)
	if err != nil {
		return c.Send(session, &wire.Failure{Code: uint32(cdw.AsError(err).Code), Message: cdw.AsError(err).Msg})
	}
	if len(meta.PrimaryKey) == 0 {
		return c.Send(session, &wire.Failure{Code: 3004,
			Message: fmt.Sprintf("stream target %s has no primary key", dml.Target.String())})
	}
	targetCols := make([]string, len(meta.Columns))
	for i, col := range meta.Columns {
		targetCols[i] = col.Name
	}
	if j.sd, err = tr.TranslateStreamDML(m.SQL, j.delStage, targetCols, meta.PrimaryKey); err != nil {
		return c.Send(session, &wire.Failure{Code: 3706, Message: err.Error()})
	}

	// The stream's name is its durable identity: a known name resumes from
	// its watermark and keeps its error table; a fresh one starts both clean.
	s.mu.Lock()
	wm, known := s.marks[m.Name]
	if !known {
		s.marks[m.Name] = 0
	}
	s.mu.Unlock()
	if !known && m.ErrTableET != "" {
		etDDL, err := sqlxlate.ErrorTableDDL(parseName(m.ErrTableET))
		if err != nil {
			return c.Send(session, &wire.Failure{Code: 3004, Message: err.Error()})
		}
		drop, _ := sqlparse.Print(&sqlparse.DropTableStmt{Table: parseName(m.ErrTableET), IfExists: true}, sqlparse.DialectCDW)
		for _, st := range []string{drop, etDDL} {
			if _, err := s.eng.ExecSQL(st); err != nil {
				return c.Send(session, &wire.Failure{Code: 3004, Message: cdw.AsError(err).Msg})
			}
		}
	}
	j.watermark = wm

	s.mu.Lock()
	s.strms[id] = j
	s.mu.Unlock()
	return c.Send(session, &wire.StreamOK{
		StreamID:  id,
		ResumeSeq: uint64(j.watermark),
		BatchHint: streamFrameHint,
	})
}

// handleDeltaFrame stages and applies one frame synchronously: replayed
// deltas are dropped, fresh ones land tuple at a time with per-tuple error
// capture, and the watermark advances before the ack — every acknowledged
// delta is durably applied.
func (s *Server) handleDeltaFrame(c *wire.Conn, session uint32, m *wire.DeltaFrame) error {
	j, ok := s.stream(m.StreamID)
	if !ok {
		return c.Send(session, &wire.Failure{Code: 3005, Message: "no such stream"})
	}
	type opAt struct {
		seq int64
		del bool
	}
	var (
		upsCSV, delCSV bytes.Buffer
		ops            []opAt
		dataErrs       []convert.DataError
	)
	rest := m.Payload
	parsed := 0
	hi := j.watermark
	for len(rest) > 0 {
		op, rec, r, err := stream.NextDelta(rest, j.req.Format)
		if err != nil {
			return c.Send(session, &wire.Failure{Code: 2675,
				Message: fmt.Sprintf("delta frame %d: %v", m.FirstSeq, err)})
		}
		seq := int64(m.FirstSeq) + int64(parsed)
		parsed++
		rest = r
		if seq <= j.watermark {
			j.replayed++
			continue
		}
		dst := &upsCSV
		if op == stream.OpDelete {
			dst = &delCSV
		}
		res, err := j.conv.ConvertInto(dst.Bytes(), rec, seq)
		if err != nil {
			return c.Send(session, &wire.Failure{Code: 2675, Message: err.Error()})
		}
		dst.Reset()
		dst.Write(res.CSV)
		if len(res.Errors) > 0 {
			dataErrs = append(dataErrs, res.Errors...)
		} else {
			ops = append(ops, opAt{seq: seq, del: op == stream.OpDelete})
		}
		if seq > hi {
			hi = seq
		}
	}
	if parsed != int(m.Count) {
		return c.Send(session, &wire.Failure{Code: 2675,
			Message: fmt.Sprintf("delta frame %d declares %d deltas, carries %d", m.FirstSeq, m.Count, parsed)})
	}

	if len(ops) > 0 {
		if err := s.stageFrame(j.upsStage, j.req, upsCSV.Bytes()); err != nil {
			return c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()})
		}
		if err := s.stageFrame(j.delStage, j.req, delCSV.Bytes()); err != nil {
			return c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()})
		}
	}
	for _, de := range dataErrs {
		j.errsET++
		if err := s.recordError(j.req.ErrTableET, de.Row, de.Row, de.Code, de.Field, de.Msg); err != nil {
			return c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()})
		}
	}
	for _, op := range ops {
		if ferr, err := s.applyDelta(j, op.seq, op.del); err != nil {
			return c.Send(session, &wire.Failure{Code: 3006, Message: err.Error()})
		} else if ferr != nil {
			return c.Send(session, ferr)
		}
	}

	if hi > j.watermark {
		j.watermark = hi
		s.mu.Lock()
		s.marks[j.req.Name] = hi
		s.mu.Unlock()
	}
	return c.Send(session, &wire.DeltaAck{
		StreamID:     j.id,
		Seq:          m.FirstSeq,
		CommittedSeq: uint64(j.watermark),
		BatchHint:    streamFrameHint,
	})
}

// stageFrame rebuilds one staging table from the frame's converted CSV.
func (s *Server) stageFrame(stage sqlparse.TableName, req *wire.BeginStream, csv []byte) error {
	drop, _ := sqlparse.Print(&sqlparse.DropTableStmt{Table: stage, IfExists: true}, sqlparse.DialectCDW)
	ddl, err := sqlxlate.StagingDDL(stage, req.Layout)
	if err != nil {
		return err
	}
	for _, st := range []string{drop, ddl} {
		if _, err := s.eng.ExecSQL(st); err != nil {
			return err
		}
	}
	if len(csv) == 0 {
		return nil
	}
	key := fmt.Sprintf("edw/%s.csv", stage.Name)
	if err := s.store.Put(key, bytes.NewReader(csv)); err != nil {
		return err
	}
	defer func() { _ = s.store.Delete(key) }()
	copySQL, _ := sqlparse.Print(&sqlparse.CopyStmt{
		Table: stage, From: "store://" + key,
		Options: map[string]string{"format": "csv"},
	}, sqlparse.DialectCDW)
	if _, err := s.eng.ExecSQL(copySQL); err != nil {
		return fmt.Errorf("staging stream frame: %s", cdw.AsError(err).Msg)
	}
	return nil
}

// applyDelta applies one staged delta tuple-at-a-time. Apply-time failures
// (conversion in the DML's expressions, constraint violations) are captured
// in the stream's error table like any legacy per-tuple reject; structural
// errors abort the stream with the returned Failure.
func (s *Server) applyDelta(j *streamSess, seq int64, del bool) (*wire.Failure, error) {
	exec := func(rs *sqlxlate.RangeStmt) (int64, *wire.Failure, error) {
		sql, err := rs.SQL(seq, seq)
		if err != nil {
			return 0, nil, err
		}
		res, err := s.eng.ExecSQL(sql)
		if err != nil {
			ee := cdw.AsError(err)
			switch ee.Code {
			case cdw.CodeNoSuchObject, cdw.CodeNoSuchColumn, cdw.CodeSyntax,
				cdw.CodeUnsupported, cdw.CodeInternal:
				return 0, &wire.Failure{Code: uint32(ee.Code), Message: ee.Msg}, nil
			}
			j.errsET++
			msg := fmt.Sprintf("%s during stream apply on %s, row number: %d", ee.Msg, j.sd.Target.String(), seq)
			if rerr := s.recordError(j.req.ErrTableET, seq, seq, ee.Code, ee.Field, msg); rerr != nil {
				return 0, nil, rerr
			}
			return -1, nil, nil // tuple rejected; skip any second half
		}
		return res.Activity, nil, nil
	}

	if del {
		if j.sd.Delete == nil {
			return nil, fmt.Errorf("stream %s cannot apply deletes", j.req.Name)
		}
		n, f, err := exec(j.sd.Delete)
		if f != nil || err != nil {
			return f, err
		}
		if n > 0 {
			j.deleted += n
		}
		return nil, nil
	}
	var a1 int64
	if j.sd.Update != nil {
		n, f, err := exec(j.sd.Update)
		if f != nil || err != nil {
			return f, err
		}
		if n < 0 {
			return nil, nil // rejected; recorded
		}
		a1 = n
	}
	n, f, err := exec(j.sd.Insert)
	if f != nil || err != nil {
		return f, err
	}
	if n < 0 {
		return nil, nil
	}
	j.updated += a1
	j.inserted += n
	return nil, nil
}

func (s *Server) handleEndStream(c *wire.Conn, session uint32, m *wire.EndStream) error {
	j, ok := s.stream(m.StreamID)
	if !ok {
		return c.Send(session, &wire.Failure{Code: 3005, Message: "no such stream"})
	}
	s.mu.Lock()
	delete(s.strms, m.StreamID)
	s.mu.Unlock()
	for _, stage := range []sqlparse.TableName{j.upsStage, j.delStage} {
		_, _ = s.eng.Exec(&sqlparse.DropTableStmt{Table: stage, IfExists: true})
	}
	return c.Send(session, &wire.StreamDone{
		StreamID:  j.id,
		Watermark: uint64(j.watermark),
		Inserted:  uint64(j.inserted),
		Updated:   uint64(j.updated),
		Deleted:   uint64(j.deleted),
		ErrorsET:  uint64(j.errsET),
		Replayed:  uint64(j.replayed),
	})
}
