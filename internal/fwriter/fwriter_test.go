package fwriter

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriterRotation(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 100, NamePrefix: "s0-"})
	chunk := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 6; i++ { // 240 bytes -> rotations at >=100
		if err := w.Write(chunk, 1); err != nil {
			t.Fatal(err)
		}
	}
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("got %d files: %+v", len(files), files)
	}
	if files[0].Name != "s0-part-00000.csv" || files[1].Name != "s0-part-00001.csv" {
		t.Errorf("names: %+v", files)
	}
	if files[0].Raw != 120 || files[1].Raw != 120 {
		t.Errorf("sizes: %+v", files)
	}
	if files[0].Rows != 3 || files[1].Rows != 3 {
		t.Errorf("rows: %+v", files)
	}
	data, ok := fs.Bytes(files[0].Name)
	if !ok || len(data) != 120 {
		t.Errorf("stored bytes = %d", len(data))
	}
}

func TestWriterGzip(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 1 << 20, Gzip: true})
	payload := bytes.Repeat([]byte("abcdef,123\n"), 1000)
	if err := w.Write(payload, 1000); err != nil {
		t.Fatal(err)
	}
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files = %+v", files)
	}
	f := files[0]
	if !strings.HasSuffix(f.Name, ".csv.gz") {
		t.Errorf("name = %q", f.Name)
	}
	if f.Bytes >= f.Raw {
		t.Errorf("compression ineffective: %d >= %d", f.Bytes, f.Raw)
	}
	data, _ := fs.Bytes(f.Name)
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Error("gunzipped content mismatch")
	}
}

func TestWriterTakeFinishedOverlapsUploads(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 10})
	w.Write([]byte("0123456789AB"), 1) // rotates immediately
	got := w.TakeFinished()
	if len(got) != 1 {
		t.Fatalf("TakeFinished = %+v", got)
	}
	if more := w.TakeFinished(); len(more) != 0 {
		t.Errorf("second take = %+v", more)
	}
	w.Write([]byte("more"), 1)
	files, _ := w.Flush()
	if len(files) != 1 {
		t.Errorf("flush = %+v", files)
	}
}

func TestWriterEmptyFlush(t *testing.T) {
	w := NewWriter(NewMemFS(), Config{})
	files, err := w.Flush()
	if err != nil || len(files) != 0 {
		t.Errorf("empty flush: %v %v", files, err)
	}
	// open-but-empty file discarded
	w2 := NewWriter(NewMemFS(), Config{SizeThreshold: 100})
	w2.Write(nil, 0)
	files, err = w2.Flush()
	if err != nil || len(files) != 0 {
		t.Errorf("empty open flush: %v %v", files, err)
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter(OSFS{Dir: dir}, Config{SizeThreshold: 8, NamePrefix: "x-"})
	w.Write([]byte("0123456789"), 2)
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files = %+v", files)
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "0123456789" {
		t.Errorf("content = %q", data)
	}
}

func TestMemFSDuplicateCreate(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := fs.Create("a"); err == nil {
		t.Error("duplicate create accepted")
	}
	fs.Remove("a")
	if _, err := fs.Create("a"); err != nil {
		t.Errorf("create after remove: %v", err)
	}
}

func TestOnRotateCallback(t *testing.T) {
	fs := NewMemFS()
	var rotated []FinishedFile
	w := NewWriter(fs, Config{
		SizeThreshold: 100,
		NamePrefix:    "r0-",
		OnRotate: func(f FinishedFile, d time.Duration) {
			if d < 0 {
				t.Errorf("rotation duration %v < 0", d)
			}
			rotated = append(rotated, f)
		},
	})
	chunk := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 6; i++ { // 240 bytes -> two threshold rotations
		if err := w.Write(chunk, 1); err != nil {
			t.Fatal(err)
		}
	}
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rotated) != len(files) {
		t.Fatalf("OnRotate fired %d times for %d finished files", len(rotated), len(files))
	}
	for i, f := range files {
		if rotated[i] != f {
			t.Errorf("rotation %d = %+v, want %+v", i, rotated[i], f)
		}
	}
}
