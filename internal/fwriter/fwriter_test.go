package fwriter

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriterRotation(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 100, NamePrefix: "s0-"})
	chunk := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 6; i++ { // 240 bytes -> rotations at >=100
		if err := w.Write(chunk, 1); err != nil {
			t.Fatal(err)
		}
	}
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("got %d files: %+v", len(files), files)
	}
	if files[0].Name != "s0-part-00000.csv" || files[1].Name != "s0-part-00001.csv" {
		t.Errorf("names: %+v", files)
	}
	if files[0].Raw != 120 || files[1].Raw != 120 {
		t.Errorf("sizes: %+v", files)
	}
	if files[0].Rows != 3 || files[1].Rows != 3 {
		t.Errorf("rows: %+v", files)
	}
	data, ok := fs.Bytes(files[0].Name)
	if !ok || len(data) != 120 {
		t.Errorf("stored bytes = %d", len(data))
	}
}

func TestWriterGzip(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 1 << 20, Gzip: true})
	payload := bytes.Repeat([]byte("abcdef,123\n"), 1000)
	if err := w.Write(payload, 1000); err != nil {
		t.Fatal(err)
	}
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files = %+v", files)
	}
	f := files[0]
	if !strings.HasSuffix(f.Name, ".csv.gz") {
		t.Errorf("name = %q", f.Name)
	}
	if f.Bytes >= f.Raw {
		t.Errorf("compression ineffective: %d >= %d", f.Bytes, f.Raw)
	}
	data, _ := fs.Bytes(f.Name)
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Error("gunzipped content mismatch")
	}
}

func TestWriterGzipLevels(t *testing.T) {
	// Highly compressible payload: BestCompression must beat BestSpeed on
	// size, and every level must decompress back to the original bytes.
	payload := bytes.Repeat([]byte("abcdefgh,12345678,abcdefgh\n"), 4000)
	sizes := map[int]int{}
	for _, level := range []int{gzip.BestSpeed, gzip.BestCompression} {
		fs := NewMemFS()
		w := NewWriter(fs, Config{SizeThreshold: 1 << 24, Gzip: true, GzipLevel: level})
		if err := w.Write(payload, 4000); err != nil {
			t.Fatal(err)
		}
		files, err := w.Flush()
		if err != nil || len(files) != 1 {
			t.Fatalf("level %d: files=%+v err=%v", level, files, err)
		}
		data, _ := fs.Bytes(files[0].Name)
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, payload) {
			t.Fatalf("level %d: content mismatch", level)
		}
		sizes[level] = files[0].Bytes
	}
	if sizes[gzip.BestCompression] >= sizes[gzip.BestSpeed] {
		t.Errorf("best compression (%d bytes) not smaller than best speed (%d bytes)",
			sizes[gzip.BestCompression], sizes[gzip.BestSpeed])
	}
}

func TestWriterPoolReuseAcrossLevels(t *testing.T) {
	// Rotating at one level, retuning, and rotating again must not hand back
	// a pooled writer stuck at the old level: a level-9 file of repetitive
	// text is measurably smaller than the same payload at level 1.
	payload := bytes.Repeat([]byte("abcdefgh,12345678,abcdefgh\n"), 4000)
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 1 << 24, Gzip: true, GzipLevel: gzip.BestSpeed})
	w.Write(payload, 4000)
	first, err := w.Flush()
	if err != nil || len(first) != 1 {
		t.Fatalf("first flush: %+v %v", first, err)
	}
	w.SetGzip(true, gzip.BestCompression)
	w.Write(payload, 4000)
	second, err := w.Flush()
	if err != nil || len(second) != 1 {
		t.Fatalf("second flush: %+v %v", second, err)
	}
	if second[0].Bytes >= first[0].Bytes {
		t.Errorf("retuned level ignored: level-9 file %d bytes vs level-1 file %d bytes",
			second[0].Bytes, first[0].Bytes)
	}
}

func TestWriterSetGzipAppliesAtNextOpen(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 1 << 20})
	w.Write([]byte("plain\n"), 1) // opens an uncompressed file
	w.SetGzip(true, gzip.BestSpeed)
	w.Write([]byte("still plain\n"), 1) // same open file: codec fixed at open
	files, err := w.Flush()
	if err != nil || len(files) != 1 {
		t.Fatalf("flush: %+v %v", files, err)
	}
	if strings.HasSuffix(files[0].Name, ".gz") {
		t.Errorf("in-progress file switched codec: %q", files[0].Name)
	}
	w.Write([]byte("compressed\n"), 1)
	files, err = w.Flush()
	if err != nil || len(files) != 1 {
		t.Fatalf("second flush: %+v %v", files, err)
	}
	if !strings.HasSuffix(files[0].Name, ".csv.gz") {
		t.Errorf("next file not compressed: %q", files[0].Name)
	}
	data, _ := fs.Bytes(files[0].Name)
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(zr)
	if string(out) != "compressed\n" {
		t.Errorf("content %q", out)
	}
}

func TestWriterSetSizeThreshold(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 1 << 20})
	w.Write(bytes.Repeat([]byte("x"), 100), 1)
	w.SetSizeThreshold(64) // shrink below what is already buffered
	if got := w.SizeThreshold(); got != 64 {
		t.Fatalf("SizeThreshold() = %d", got)
	}
	w.Write([]byte("y"), 1) // next write rotates against the new threshold
	if got := w.TakeFinished(); len(got) != 1 {
		t.Errorf("shrunk threshold did not rotate: %+v", got)
	}
	w.SetSizeThreshold(0) // ignored
	if got := w.SizeThreshold(); got != 64 {
		t.Errorf("invalid threshold accepted: %d", got)
	}
}

func TestNormGzipLevel(t *testing.T) {
	for in, want := range map[int]int{-1: 0, 0: 0, 1: 1, 9: 9, 10: 0, 42: 0} {
		if got := normGzipLevel(in); got != want {
			t.Errorf("normGzipLevel(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestWriterTakeFinishedOverlapsUploads(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, Config{SizeThreshold: 10})
	w.Write([]byte("0123456789AB"), 1) // rotates immediately
	got := w.TakeFinished()
	if len(got) != 1 {
		t.Fatalf("TakeFinished = %+v", got)
	}
	if more := w.TakeFinished(); len(more) != 0 {
		t.Errorf("second take = %+v", more)
	}
	w.Write([]byte("more"), 1)
	files, _ := w.Flush()
	if len(files) != 1 {
		t.Errorf("flush = %+v", files)
	}
}

func TestWriterEmptyFlush(t *testing.T) {
	w := NewWriter(NewMemFS(), Config{})
	files, err := w.Flush()
	if err != nil || len(files) != 0 {
		t.Errorf("empty flush: %v %v", files, err)
	}
	// open-but-empty file discarded
	w2 := NewWriter(NewMemFS(), Config{SizeThreshold: 100})
	w2.Write(nil, 0)
	files, err = w2.Flush()
	if err != nil || len(files) != 0 {
		t.Errorf("empty open flush: %v %v", files, err)
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter(OSFS{Dir: dir}, Config{SizeThreshold: 8, NamePrefix: "x-"})
	w.Write([]byte("0123456789"), 2)
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files = %+v", files)
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "0123456789" {
		t.Errorf("content = %q", data)
	}
}

func TestMemFSDuplicateCreate(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := fs.Create("a"); err == nil {
		t.Error("duplicate create accepted")
	}
	fs.Remove("a")
	if _, err := fs.Create("a"); err != nil {
		t.Errorf("create after remove: %v", err)
	}
}

func TestOnRotateCallback(t *testing.T) {
	fs := NewMemFS()
	var rotated []FinishedFile
	w := NewWriter(fs, Config{
		SizeThreshold: 100,
		NamePrefix:    "r0-",
		OnRotate: func(f FinishedFile, d time.Duration) {
			if d < 0 {
				t.Errorf("rotation duration %v < 0", d)
			}
			rotated = append(rotated, f)
		},
	})
	chunk := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 6; i++ { // 240 bytes -> two threshold rotations
		if err := w.Write(chunk, 1); err != nil {
			t.Fatal(err)
		}
	}
	files, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rotated) != len(files) {
		t.Fatalf("OnRotate fired %d times for %d finished files", len(rotated), len(files))
	}
	for i, f := range files {
		if rotated[i] != f {
			t.Errorf("rotation %d = %+v, want %+v", i, rotated[i], f)
		}
	}
}
