// Package fwriter implements the FileWriter stage of §5: serializing
// converted data chunks into intermediate files sized for the CDW bulk
// loader, rotating at a configurable threshold, and finalizing files
// (optionally gzip-compressing them) for upload.
//
// The FileWriter is deliberately decoupled from conversion so that disk and
// compression jitter cannot stall the DataConverter workers; internal/core
// runs each Writer in its own goroutine fed by a channel.
package fwriter

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FS abstracts the filesystem the writer targets so benchmarks can run
// against memory.
type FS interface {
	// Create opens a new file for writing. Name is writer-unique.
	Create(name string) (io.WriteCloser, error)
}

// OSFS writes real files under Dir.
type OSFS struct {
	Dir string
}

// Create implements FS.
func (f OSFS) Create(name string) (io.WriteCloser, error) {
	return os.Create(filepath.Join(f.Dir, name))
}

// MemFS collects files in memory; Bytes retrieves them.
type MemFS struct {
	mu       sync.Mutex
	files    map[string]*bytes.Buffer
	sizeHint int
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS {
	return NewMemFSSized(0)
}

// NewMemFSSized returns an empty in-memory FS whose files pre-allocate
// sizeHint bytes of capacity on creation. Callers that know the rotation
// threshold pass it here so file buffers grow once instead of doubling
// their way up through every Write.
func NewMemFSSized(sizeHint int) *MemFS {
	return &MemFS{files: make(map[string]*bytes.Buffer), sizeHint: sizeHint}
}

type memFile struct {
	buf *bytes.Buffer
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Close() error                { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (io.WriteCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; ok {
		return nil, fmt.Errorf("fwriter: file %q already exists", name)
	}
	buf := bytes.NewBuffer(make([]byte, 0, m.sizeHint))
	m.files[name] = buf
	return &memFile{buf: buf}, nil
}

// Bytes returns the contents of a finished file.
func (m *MemFS) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[name]
	if !ok {
		return nil, false
	}
	return buf.Bytes(), true
}

// Remove discards a file after upload.
func (m *MemFS) Remove(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
}

// Config tunes one Writer. These are the §6 knobs the paper discusses:
// intermediate file size trades write parallelism against per-file copy
// overhead; compression trades CPU for upload bandwidth.
type Config struct {
	// SizeThreshold rotates the current file once it holds at least this
	// many uncompressed bytes. Values below 1 default to 4 MiB.
	SizeThreshold int
	// Gzip compresses finalized files.
	Gzip bool
	// GzipLevel selects the compression level (gzip.BestSpeed=1 ..
	// gzip.BestCompression=9) when Gzip is set. Values outside that range
	// select gzip.DefaultCompression.
	GzipLevel int
	// NamePrefix distinguishes files from parallel writers.
	NamePrefix string
	// OnRotate, when non-nil, is called each time a file is finalized with
	// the finished file and the time spent closing it out (gzip flush +
	// close). The virtualizer wires this into its rotation histogram.
	OnRotate func(f FinishedFile, d time.Duration)
}

// FinishedFile describes one finalized intermediate file ready for upload.
type FinishedFile struct {
	Name  string
	Rows  int
	Bytes int // bytes written to the FS (compressed size when gzipped)
	Raw   int // uncompressed payload bytes
}

// Writer serializes chunks into rotated files on an FS. Not safe for
// concurrent use: run one Writer per goroutine (core spawns several, matching
// the paper's parallel FileWriter processes).
type Writer struct {
	fs  FS
	cfg Config

	seq     int
	cur     io.WriteCloser
	gz      *gzip.Writer
	gzLevel int // level of the gz writer currently checked out of its pool
	curName string
	curRaw  int
	curComp *countWriter
	curRows int

	finished []FinishedFile
}

// gzPools recycles gzip.Writers across file rotations and Writer instances:
// a gzip.Writer carries several hundred KB of compressor state, so building
// one per rotated file would dominate the writer stage's allocations. A
// gzip.Writer keeps its compression level across Reset, so the pools are
// per-level: index 0 holds gzip.DefaultCompression writers, 1..9 the
// explicit levels.
var gzPools [gzip.BestCompression + 1]sync.Pool

// normGzipLevel maps a configured level to a pool index.
func normGzipLevel(level int) int {
	if level < gzip.BestSpeed || level > gzip.BestCompression {
		return 0 // gzip.DefaultCompression
	}
	return level
}

func getGzip(level int) *gzip.Writer {
	level = normGzipLevel(level)
	if w, ok := gzPools[level].Get().(*gzip.Writer); ok {
		return w
	}
	if level == 0 {
		return gzip.NewWriter(io.Discard)
	}
	w, _ := gzip.NewWriterLevel(io.Discard, level) // level already validated
	return w
}

func putGzip(level int, w *gzip.Writer) {
	gzPools[normGzipLevel(level)].Put(w)
}

type countWriter struct {
	w io.Writer
	n int
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// NewWriter returns a Writer on fs.
func NewWriter(fs FS, cfg Config) *Writer {
	if cfg.SizeThreshold < 1 {
		cfg.SizeThreshold = 4 << 20
	}
	return &Writer{fs: fs, cfg: cfg}
}

// Write appends one converted chunk to the current file, rotating first when
// the file has reached the size threshold.
func (w *Writer) Write(data []byte, rows int) error {
	if w.cur == nil {
		if err := w.open(); err != nil {
			return err
		}
	}
	var dst io.Writer = w.curComp
	if w.gz != nil {
		dst = w.gz
	}
	if _, err := dst.Write(data); err != nil {
		return fmt.Errorf("fwriter: writing %s: %w", w.curName, err)
	}
	w.curRaw += len(data)
	w.curRows += rows
	if w.curRaw >= w.cfg.SizeThreshold {
		return w.rotate()
	}
	return nil
}

func (w *Writer) open() error {
	name := fmt.Sprintf("%spart-%05d.csv", w.cfg.NamePrefix, w.seq)
	if w.cfg.Gzip {
		name += ".gz"
	}
	w.seq++
	f, err := w.fs.Create(name)
	if err != nil {
		return fmt.Errorf("fwriter: creating %s: %w", name, err)
	}
	w.cur = f
	w.curName = name
	w.curRaw = 0
	w.curRows = 0
	w.curComp = &countWriter{w: f}
	if w.cfg.Gzip {
		w.gz = getGzip(w.cfg.GzipLevel)
		w.gzLevel = w.cfg.GzipLevel
		w.gz.Reset(w.curComp)
	}
	return nil
}

// SetSizeThreshold retunes the rotation threshold. Values below 1 are
// ignored. The in-progress file rotates against the new threshold on its
// next Write, so a shrink takes effect without waiting for a rotation.
func (w *Writer) SetSizeThreshold(n int) {
	if n >= 1 {
		w.cfg.SizeThreshold = n
	}
}

// SetGzip retunes compression. The change applies from the next opened file:
// the in-progress file keeps the codec and level it was opened with, since a
// file's .gz suffix (and the loader's decompression decision) is fixed at
// open time.
func (w *Writer) SetGzip(enabled bool, level int) {
	w.cfg.Gzip = enabled
	w.cfg.GzipLevel = level
}

// SizeThreshold reports the current rotation threshold.
func (w *Writer) SizeThreshold() int { return w.cfg.SizeThreshold }

func (w *Writer) rotate() error {
	if w.cur == nil {
		return nil
	}
	start := time.Now()
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return fmt.Errorf("fwriter: finalizing %s: %w", w.curName, err)
		}
		putGzip(w.gzLevel, w.gz)
		w.gz = nil
	}
	if err := w.cur.Close(); err != nil {
		return fmt.Errorf("fwriter: closing %s: %w", w.curName, err)
	}
	f := FinishedFile{
		Name:  w.curName,
		Rows:  w.curRows,
		Bytes: w.curComp.n,
		Raw:   w.curRaw,
	}
	w.finished = append(w.finished, f)
	w.cur = nil
	w.curComp = nil
	if w.cfg.OnRotate != nil {
		w.cfg.OnRotate(f, time.Since(start))
	}
	return nil
}

// Flush finalizes the in-progress file (if any) and returns every file
// finished since the previous Flush.
func (w *Writer) Flush() ([]FinishedFile, error) {
	if w.cur != nil && w.curRaw > 0 {
		if err := w.rotate(); err != nil {
			return nil, err
		}
	} else if w.cur != nil {
		// empty open file: discard
		if w.gz != nil {
			w.gz.Close()
			putGzip(w.gzLevel, w.gz)
			w.gz = nil
		}
		w.cur.Close()
		w.cur = nil
	}
	out := w.finished
	w.finished = nil
	return out, nil
}

// TakeFinished returns files completed by rotation so far without forcing a
// flush, letting the caller overlap uploads with ongoing writes.
func (w *Writer) TakeFinished() []FinishedFile {
	out := w.finished
	w.finished = nil
	return out
}
