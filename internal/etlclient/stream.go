package etlclient

import (
	"fmt"
	"strings"
	"time"

	"etlvirt/internal/etlscript"
	"etlvirt/internal/ltype"
	"etlvirt/internal/stream"
	"etlvirt/internal/wire"
)

// StreamResult reports one executed stream block.
type StreamResult struct {
	Name       string
	Table      string
	DeltasSent int64 // deltas transmitted (after client-side resume skip)
	Skipped    int64 // deltas dropped client-side, at or below the resume watermark
	Frames     int64 // delta frames sent
	Watermark  int64 // final durable commit watermark
	Replayed   int64 // deltas the server discarded as already applied
	Inserted   int64
	Updated    int64
	Deleted    int64
	ErrorsET   int64
	FinalHint  int64 // controller's last frame-size hint, shows adaptation
	Total      time.Duration
}

// delta is one parsed CDC record from a delta input file.
type delta struct {
	op     stream.Op
	record []byte // format framing intact (trailing newline / length prefix)
}

// splitDeltas parses the on-disk delta-file encoding. A vartext delta file
// carries one delta per line, the op marker as its first field:
//
//	I|100|Alice
//	U|100|Alicia
//	D|200|
//
// An op-only line (no delimiter) is a delta with an empty record. An
// indicator delta file uses the wire framing directly: op marker byte, then
// the length-prefixed record.
func splitDeltas(data []byte, format wire.DataFormat, delim byte) ([]delta, error) {
	var out []delta
	switch format {
	case wire.FormatVartext:
		for i, line := range ltype.SplitVartextLines(data) {
			if len(line) == 0 {
				continue
			}
			op := stream.Op(line[0])
			if !op.Valid() {
				return nil, fmt.Errorf("etlclient: delta line %d: bad op marker %q", i+1, line[0])
			}
			var rec []byte
			if len(line) > 1 {
				if line[1] != delim {
					return nil, fmt.Errorf("etlclient: delta line %d: expected %q after op marker", i+1, delim)
				}
				rec = append(rec, line[2:]...)
			}
			rec = append(rec, '\n')
			out = append(out, delta{op: op, record: rec})
		}
		return out, nil
	case wire.FormatIndicator:
		rest := data
		for len(rest) > 0 {
			op, rec, r, err := stream.NextDelta(rest, format)
			if err != nil {
				return nil, fmt.Errorf("etlclient: delta record %d: %w", len(out)+1, err)
			}
			out = append(out, delta{op: op, record: rec})
			rest = r
		}
		return out, nil
	default:
		return nil, fmt.Errorf("etlclient: unknown format %d", format)
	}
}

// runStream executes one stream block on the control connection. Streaming
// is strictly request/response: each frame waits for its DeltaAck, and the
// server's synchronous micro-batch commit is the natural backpressure. The
// frame size follows the server controller's live BatchHint, so the client
// visibly adapts to the observed commit latency.
func runStream(ctl *wire.Conn, script *etlscript.Script, blk *etlscript.StreamBlock, opts Options, traceID uint64) (*StreamResult, error) {
	start := time.Now()
	if len(blk.Streams) == 0 {
		return nil, fmt.Errorf("etlclient: stream block has no .stream command")
	}
	// Multiple .stream commands feed one stream in file order; they must
	// agree on layout, format and apply label (one converter, one apply DML).
	cmd := blk.Streams[0]
	for _, other := range blk.Streams[1:] {
		if !strings.EqualFold(other.LayoutName, cmd.LayoutName) ||
			other.Format != cmd.Format || other.Delim != cmd.Delim ||
			!strings.EqualFold(other.ApplyLabel, cmd.ApplyLabel) {
			return nil, fmt.Errorf("etlclient: .stream commands in one block must share layout, format and apply label")
		}
	}
	layout, err := script.Layout(cmd.LayoutName)
	if err != nil {
		return nil, err
	}
	var deltas []delta
	for _, c := range blk.Streams {
		data, err := opts.ReadFile(c.Infile)
		if err != nil {
			return nil, fmt.Errorf("etlclient: reading %s: %w", c.Infile, err)
		}
		ds, err := splitDeltas(data, c.Format, c.Delim)
		if err != nil {
			return nil, fmt.Errorf("etlclient: %s: %w", c.Infile, err)
		}
		deltas = append(deltas, ds...)
	}

	latency := uint32(blk.LatencyMS)
	if opts.StreamLatencyMS > 0 {
		latency = uint32(opts.StreamLatencyMS)
	}
	begin := &wire.BeginStream{
		Name:            blk.Name,
		Table:           blk.Table,
		ErrTableET:      blk.ErrTableET,
		Layout:          layout,
		Format:          cmd.Format,
		Delim:           cmd.Delim,
		SQL:             blk.DMLs[strings.ToLower(cmd.ApplyLabel)],
		LatencyTargetMS: latency,
		MaxErrors:       uint32(blk.MaxErrors),
	}
	tr := newClientTrace(traceID, "stream "+blk.Name)
	if err := ctl.SendT(0, begin, tr.ctx()); err != nil {
		return nil, err
	}
	m, err := ctl.Expect(wire.KindStreamOK)
	if err != nil {
		return nil, fmt.Errorf("etlclient: begin stream: %w", err)
	}
	ok := m.(*wire.StreamOK)
	res := &StreamResult{Name: blk.Name, Table: blk.Table}

	// Client-side resume: deltas at or below the durable watermark were
	// already applied by an earlier run of this stream; skip them rather
	// than shipping them for the server to discard. Delta sequence is the
	// 1-based position in the concatenated input.
	next := 0
	if ok.ResumeSeq > 0 {
		next = int(ok.ResumeSeq)
		if next > len(deltas) {
			next = len(deltas)
		}
		res.Skipped = int64(next)
	}

	hint := int(ok.BatchHint)
	if hint <= 0 {
		hint = 64
	}
	var payload []byte
	for next < len(deltas) {
		n := hint
		if rem := len(deltas) - next; n > rem {
			n = rem
		}
		payload = payload[:0]
		for _, d := range deltas[next : next+n] {
			payload = stream.AppendDelta(payload, d.op, d.record)
		}
		frame := &wire.DeltaFrame{
			StreamID: ok.StreamID,
			FirstSeq: uint64(next + 1),
			Count:    uint32(n),
			Payload:  payload,
		}
		frameStart := time.Now()
		if err := ctl.Send(0, frame); err != nil {
			return nil, err
		}
		am, err := ctl.Expect(wire.KindDeltaAck)
		if err != nil {
			return nil, fmt.Errorf("etlclient: stream %s frame at seq %d: %w", blk.Name, frame.FirstSeq, err)
		}
		ack := am.(*wire.DeltaAck)
		if ack.Seq != frame.FirstSeq {
			return nil, fmt.Errorf("etlclient: ack for frame %d, sent %d", ack.Seq, frame.FirstSeq)
		}
		if h := int(ack.BatchHint); h > 0 {
			hint = h
		}
		tr.span("frame", "stream", frameStart, int64(n), int64(len(payload)), nil)
		res.DeltasSent += int64(n)
		res.Frames++
		next += n
	}
	res.FinalHint = int64(hint)

	if err := tr.ship(ctl, ok.StreamID); err != nil {
		return nil, err
	}
	if err := ctl.Send(0, &wire.EndStream{StreamID: ok.StreamID}); err != nil {
		return nil, err
	}
	m, err = ctl.Expect(wire.KindStreamDone)
	if err != nil {
		return nil, fmt.Errorf("etlclient: end stream %s: %w", blk.Name, err)
	}
	done := m.(*wire.StreamDone)
	res.Watermark = int64(done.Watermark)
	res.Replayed = int64(done.Replayed)
	res.Inserted = int64(done.Inserted)
	res.Updated = int64(done.Updated)
	res.Deleted = int64(done.Deleted)
	res.ErrorsET = int64(done.ErrorsET)
	res.Total = time.Since(start)
	return res, nil
}
