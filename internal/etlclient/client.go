// Package etlclient is the legacy ETL client: it executes parsed job
// scripts against any server speaking the legacy wire protocol — the
// original EDW (internal/edw) or the virtualizer (internal/core). That a
// single unmodified client works against both is the paper's transparency
// claim.
//
// The client reproduces the legacy utilities' behaviour described in §2:
// it opens parallel data-loading sessions, splits the input into chunks,
// transmits them with a synchronous per-session ack protocol, submits the
// application-phase DML, and finally queries error counts.
//
// This package is the client dispatch surface of the protocol: the wirekind
// analyzer checks that every server->client frame kind is consumed somewhere
// here (by message type or by Expect(wire.KindX)).
//
//etlvirt:dispatch client
package etlclient

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etlvirt/internal/etlscript"
	"etlvirt/internal/ltype"
	"etlvirt/internal/obs"
	"etlvirt/internal/wire"
)

// Options configures script execution.
type Options struct {
	// Addr is the server address; overrides the script's .logon host when
	// set.
	Addr string
	// ChunkRecords bounds records per data chunk. Zero defaults to 500.
	ChunkRecords int
	// Sessions overrides the per-block session count. Zero keeps the
	// script's value (default 1).
	Sessions int
	// StreamLatencyMS overrides the per-block micro-batch commit latency
	// target for stream blocks. Zero keeps the script's value (0 = server
	// default).
	StreamLatencyMS int
	// ReadFile loads input files; nil uses os.ReadFile. Benchmarks inject
	// generated data here.
	ReadFile func(name string) ([]byte, error)
	// WriteFile stores export output; nil uses os.WriteFile.
	WriteFile func(name string, data []byte) error
	// Trace enables client-side distributed tracing: the run mints one
	// trace ID, every import and stream job propagates it on its Begin
	// message so the server continues the trace, and the client ships its
	// local spans to the server before tearing the job down. Legacy servers
	// without tracing support still execute the job; only the span fold is
	// skipped.
	Trace bool
}

func (o Options) withDefaults() Options {
	if o.ChunkRecords <= 0 {
		o.ChunkRecords = 500
	}
	if o.ReadFile == nil {
		o.ReadFile = os.ReadFile
	}
	if o.WriteFile == nil {
		o.WriteFile = func(name string, data []byte) error {
			return os.WriteFile(name, data, 0o644)
		}
	}
	return o
}

// ImportResult reports one executed import block.
type ImportResult struct {
	Table      string
	RowsSent   int64
	RowsStaged int64
	DataErrors int64
	Inserted   int64
	Updated    int64
	Deleted    int64
	ErrorsET   int64
	ErrorsUV   int64

	Acquisition time.Duration // first chunk sent -> AcquireDone
	Application time.Duration // ApplyDML round trips
	Total       time.Duration // BeginLoad -> LoadDone
}

// ExportResult reports one executed export block.
type ExportResult struct {
	Outfile string
	Rows    int64
	Total   time.Duration
}

// Result is the outcome of a full script run.
type Result struct {
	Imports []ImportResult
	Exports []ExportResult
	Streams []StreamResult

	// TraceID is the run's distributed trace ID (16 hex digits) when
	// Options.Trace is set; fetch /traces/{TraceID} on the server's debug
	// listener for the stitched cross-process timeline.
	TraceID string
}

// Run executes a script.
func Run(script *etlscript.Script, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	addr := opts.Addr
	if addr == "" {
		addr = script.Logon.Host
	}
	ctl, err := logon(addr, script.Logon)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = ctl.Send(0, &wire.Logoff{})
		ctl.Close()
	}()

	var traceID uint64
	res := &Result{}
	if opts.Trace {
		traceID = obs.NewTraceID()
		res.TraceID = obs.FormatTraceID(traceID)
	}
	for _, step := range script.Steps {
		switch {
		case step.Import != nil:
			ir, err := runImport(ctl, addr, script, step.Import, opts, traceID)
			if err != nil {
				return res, err
			}
			res.Imports = append(res.Imports, *ir)
		case step.Export != nil:
			er, err := runExport(ctl, addr, script.Logon, step.Export, opts)
			if err != nil {
				return res, err
			}
			res.Exports = append(res.Exports, *er)
		case step.Stream != nil:
			sr, err := runStream(ctl, script, step.Stream, opts, traceID)
			if err != nil {
				return res, err
			}
			res.Streams = append(res.Streams, *sr)
		case step.SQL != "":
			if err := runAdhoc(ctl, step.SQL); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

func logon(addr string, lg etlscript.Logon) (*wire.Conn, error) {
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("etlclient: dialing %s: %w", addr, err)
	}
	if err := c.Send(0, &wire.Logon{Host: lg.Host, User: lg.User, Password: lg.Password}); err != nil {
		c.Close()
		return nil, err
	}
	if _, err := c.Expect(wire.KindLogonOK); err != nil {
		c.Close()
		return nil, fmt.Errorf("etlclient: logon rejected: %w", err)
	}
	return c, nil
}

// runAdhoc executes a .run statement and discards any result rows.
func runAdhoc(ctl *wire.Conn, sql string) error {
	if err := ctl.Send(0, &wire.RunSQL{SQL: sql}); err != nil {
		return err
	}
	for {
		m, _, err := ctl.Recv()
		if err != nil {
			return err
		}
		switch v := m.(type) {
		case *wire.StmtSuccess, *wire.EndStatement:
			return nil
		case *wire.RecordHeader, *wire.Records:
			// drain result set
		case *wire.Failure:
			return v
		default:
			return fmt.Errorf("etlclient: unexpected %s during .run", m.Kind())
		}
	}
}

// QueryRows runs a SQL request on a fresh connection and decodes the result
// rows (used by tests and examples to inspect server state through the
// legacy protocol).
func QueryRows(addr string, lg etlscript.Logon, sql string) (*ltype.Layout, []ltype.Record, error) {
	c, err := logon(addr, lg)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		_ = c.Send(0, &wire.Logoff{})
		c.Close()
	}()
	if err := c.Send(0, &wire.RunSQL{SQL: sql}); err != nil {
		return nil, nil, err
	}
	var layout *ltype.Layout
	var rows []ltype.Record
	for {
		m, _, err := c.Recv()
		if err != nil {
			return nil, nil, err
		}
		switch v := m.(type) {
		case *wire.RecordHeader:
			layout = v.Layout
		case *wire.Records:
			if layout == nil {
				return nil, nil, fmt.Errorf("etlclient: records before header")
			}
			payload := v.Payload
			for len(payload) > 0 {
				rec, n, err := ltype.DecodeRecord(payload, layout)
				if err != nil {
					return nil, nil, err
				}
				rows = append(rows, rec)
				payload = payload[n:]
			}
		case *wire.EndStatement:
			return layout, rows, nil
		case *wire.StmtSuccess:
			return layout, rows, nil
		case *wire.Failure:
			return nil, nil, v
		default:
			return nil, nil, fmt.Errorf("etlclient: unexpected %s", m.Kind())
		}
	}
}

// Exec runs a non-query SQL request on a fresh connection and returns the
// activity count.
func Exec(addr string, lg etlscript.Logon, sql string) (int64, error) {
	c, err := logon(addr, lg)
	if err != nil {
		return 0, err
	}
	defer func() {
		_ = c.Send(0, &wire.Logoff{})
		c.Close()
	}()
	if err := c.Send(0, &wire.RunSQL{SQL: sql}); err != nil {
		return 0, err
	}
	m, err := c.Expect(wire.KindStmtSuccess)
	if err != nil {
		return 0, err
	}
	return int64(m.(*wire.StmtSuccess).ActivityCount), nil
}

// clientTrace is the client half of one job's distributed trace: local
// spans accumulate in a JobTrace, the root span's context rides the job's
// Begin message so the server's per-job trace parents under it, and ship
// folds the client spans into the server timeline at job end. A nil
// clientTrace (tracing off) makes every method a no-op.
type clientTrace struct {
	jt   *obs.JobTrace
	root uint64
}

func newClientTrace(traceID uint64, label string) *clientTrace {
	if traceID == 0 {
		return nil
	}
	root := obs.NewSpanID()
	tc := obs.TraceContext{TraceID: traceID, SpanID: root, Sampled: true}
	return &clientTrace{jt: obs.NewJobTrace(label, 0, "etlclient", tc), root: root}
}

// ctx is the context to propagate on the job's Begin message.
func (t *clientTrace) ctx() obs.TraceContext {
	if t == nil {
		return obs.TraceContext{}
	}
	return t.jt.Context()
}

// span records a completed client-side stage, parented under the client
// root span. Safe from concurrent session goroutines.
func (t *clientTrace) span(stage, worker string, start time.Time, rows, bytes int64, err error) {
	if t == nil {
		return
	}
	s := obs.Span{Parent: t.root, Stage: stage, Worker: worker,
		Start: start, Dur: time.Since(start), Rows: rows, Bytes: bytes}
	if err != nil {
		s.Err = err.Error()
	}
	t.jt.Add(s)
}

// ship closes the client root span and sends the collected spans to the
// server, which folds them into the job's timeline and acks. A legacy
// server that predates tracing answers with a Failure; the job still
// succeeded, so the spans are dropped and the run continues.
func (t *clientTrace) ship(ctl *wire.Conn, jobID uint64) error {
	if t == nil {
		return nil
	}
	snap := t.jt.Snapshot()
	spans := make([]obs.Span, 0, len(snap.Spans)+1)
	spans = append(spans, obs.Span{
		ID: t.root, Proc: "etlclient", Stage: "client", Worker: "job",
		Start: t.jt.Begin, Dur: time.Since(t.jt.Begin),
	})
	spans = append(spans, snap.Spans...)
	if err := ctl.Send(0, &wire.TraceSpans{JobID: jobID, Spans: spans}); err != nil {
		return err
	}
	if _, err := ctl.Expect(wire.KindTraceAck); err != nil {
		var f *wire.Failure
		if errors.As(err, &f) {
			return nil
		}
		return err
	}
	return nil
}

// chunk is one pre-split data chunk.
type chunk struct {
	seq      uint64
	firstRow uint64
	count    uint32
	payload  []byte
}

// splitInput splits raw input-file contents into chunks of at most
// chunkRecords records, preserving record boundaries.
func splitInput(data []byte, format wire.DataFormat, chunkRecords int) ([]chunk, int64, error) {
	var chunks []chunk
	var row uint64 = 1
	var seq uint64
	switch format {
	case wire.FormatVartext:
		lines := ltype.SplitVartextLines(data)
		for start := 0; start < len(lines); start += chunkRecords {
			end := start + chunkRecords
			if end > len(lines) {
				end = len(lines)
			}
			var payload []byte
			for _, l := range lines[start:end] {
				payload = append(payload, l...)
				payload = append(payload, '\n')
			}
			chunks = append(chunks, chunk{
				seq: seq, firstRow: row, count: uint32(end - start), payload: payload,
			})
			seq++
			row += uint64(end - start)
		}
		return chunks, int64(len(lines)), nil

	case wire.FormatIndicator:
		total := int64(0)
		rest := data
		for len(rest) > 0 {
			var payload []byte
			count := 0
			for count < chunkRecords && len(rest) > 0 {
				if len(rest) < 2 {
					return nil, 0, fmt.Errorf("etlclient: truncated record in input")
				}
				n := 2 + int(binary.BigEndian.Uint16(rest)) + 1
				if len(rest) < n {
					return nil, 0, fmt.Errorf("etlclient: truncated record in input")
				}
				payload = append(payload, rest[:n]...)
				rest = rest[n:]
				count++
			}
			chunks = append(chunks, chunk{
				seq: seq, firstRow: row, count: uint32(count), payload: payload,
			})
			seq++
			row += uint64(count)
			total += int64(count)
		}
		return chunks, total, nil

	default:
		return nil, 0, fmt.Errorf("etlclient: unknown format %d", format)
	}
}

func runImport(ctl *wire.Conn, addr string, script *etlscript.Script, blk *etlscript.ImportBlock, opts Options, traceID uint64) (*ImportResult, error) {
	start := time.Now()
	if len(blk.Imports) == 0 {
		return nil, fmt.Errorf("etlclient: import block has no .import command")
	}
	// Multiple .import commands feed one job; they must agree on layout,
	// format and apply label since the job stages everything into one table
	// and runs one application phase.
	imp := blk.Imports[0]
	for _, other := range blk.Imports[1:] {
		if !strings.EqualFold(other.LayoutName, imp.LayoutName) ||
			other.Format != imp.Format || other.Delim != imp.Delim ||
			!strings.EqualFold(other.ApplyLabel, imp.ApplyLabel) {
			return nil, fmt.Errorf("etlclient: .import commands in one block must share layout, format and apply label")
		}
	}
	layout, err := script.Layout(imp.LayoutName)
	if err != nil {
		return nil, err
	}
	sessions := blk.Sessions
	if opts.Sessions > 0 {
		sessions = opts.Sessions
	}
	if sessions <= 0 {
		sessions = 1
	}

	var chunks []chunk
	var totalRows int64
	for _, cmd := range blk.Imports {
		data, err := opts.ReadFile(cmd.Infile)
		if err != nil {
			return nil, fmt.Errorf("etlclient: reading %s: %w", cmd.Infile, err)
		}
		fileChunks, fileRows, err := splitInput(data, cmd.Format, opts.ChunkRecords)
		if err != nil {
			return nil, fmt.Errorf("etlclient: %s: %w", cmd.Infile, err)
		}
		// renumber so sequence and row numbers continue across files
		for i := range fileChunks {
			fileChunks[i].seq += uint64(len(chunks))
			fileChunks[i].firstRow += uint64(totalRows)
		}
		chunks = append(chunks, fileChunks...)
		totalRows += fileRows
	}

	tr := newClientTrace(traceID, "import "+blk.Table)

	// (1) create the job
	begin := &wire.BeginLoad{
		Table:      blk.Table,
		ErrTableET: blk.ErrTableET,
		ErrTableUV: blk.ErrTableUV,
		Layout:     layout,
		Format:     imp.Format,
		Delim:      imp.Delim,
		Sessions:   uint16(sessions),
		MaxErrors:  uint32(blk.MaxErrors),
		MaxRetries: uint32(blk.MaxRetries),
	}
	if err := ctl.SendT(0, begin, tr.ctx()); err != nil {
		return nil, err
	}
	m, err := ctl.Expect(wire.KindLoadOK)
	if err != nil {
		return nil, fmt.Errorf("etlclient: begin load: %w", err)
	}
	jobID := m.(*wire.LoadOK).JobID

	// (2) parallel data sessions pump chunks with per-session sync acks
	acqStart := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(sessionSeq int) {
			defer wg.Done()
			dc, err := logon(addr, script.Logon)
			if err != nil {
				errs <- err
				return
			}
			defer func() {
				_ = dc.Send(0, &wire.Logoff{})
				dc.Close()
			}()
			if err := dc.Send(0, &wire.AttachLoad{JobID: jobID, SessionSeq: uint16(sessionSeq)}); err != nil {
				errs <- err
				return
			}
			if _, err := dc.Expect(wire.KindAttachOK); err != nil {
				errs <- err
				return
			}
			sessStart := time.Now()
			var sentRows, sentBytes int64
			defer func() {
				tr.span("send_chunks", fmt.Sprintf("session-%d", sessionSeq), sessStart, sentRows, sentBytes, nil)
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(chunks)) {
					return
				}
				ck := chunks[i]
				msg := &wire.DataChunk{
					JobID: jobID, Seq: ck.seq, FirstRow: ck.firstRow,
					Count: ck.count, Payload: ck.payload,
				}
				if err := dc.Send(0, msg); err != nil {
					errs <- err
					return
				}
				ack, err := dc.Expect(wire.KindChunkAck)
				if err != nil {
					errs <- err
					return
				}
				if ack.(*wire.ChunkAck).Seq != ck.seq {
					errs <- fmt.Errorf("etlclient: ack for chunk %d, sent %d", ack.(*wire.ChunkAck).Seq, ck.seq)
					return
				}
				sentRows += int64(ck.count)
				sentBytes += int64(len(ck.payload))
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	// (3) finish acquisition
	waitStart := time.Now()
	if err := ctl.Send(0, &wire.EndAcquire{JobID: jobID}); err != nil {
		return nil, err
	}
	m, err = ctl.Expect(wire.KindAcquireDone)
	if err != nil {
		return nil, fmt.Errorf("etlclient: acquisition: %w", err)
	}
	done := m.(*wire.AcquireDone)
	acqDur := time.Since(acqStart)
	tr.span("acquire_wait", "control", waitStart, int64(done.RowsStaged), 0, nil)

	// (4) application phase
	res := &ImportResult{
		Table:       blk.Table,
		RowsSent:    totalRows,
		RowsStaged:  int64(done.RowsStaged),
		DataErrors:  int64(done.DataErrors),
		Acquisition: acqDur,
	}
	appStart := time.Now()
	label := imp.ApplyLabel
	sql := blk.DMLs[strings.ToLower(label)]
	if err := ctl.Send(0, &wire.ApplyDML{JobID: jobID, Label: label, SQL: sql}); err != nil {
		return nil, err
	}
	m, err = ctl.Expect(wire.KindApplyResult)
	if err != nil {
		return nil, fmt.Errorf("etlclient: apply %s: %w", label, err)
	}
	ar := m.(*wire.ApplyResult)
	res.Inserted = int64(ar.Inserted)
	res.Updated = int64(ar.Updated)
	res.Deleted = int64(ar.Deleted)
	res.ErrorsET = int64(ar.ErrorsET) + int64(done.DataErrors)
	res.ErrorsUV = int64(ar.ErrorsUV)
	res.Application = time.Since(appStart)
	tr.span("apply_wait", "control", appStart, res.Inserted+res.Updated+res.Deleted, 0, nil)

	// (5) tear the job down
	if err := tr.ship(ctl, jobID); err != nil {
		return nil, err
	}
	if err := ctl.Send(0, &wire.EndLoad{JobID: jobID}); err != nil {
		return nil, err
	}
	if _, err := ctl.Expect(wire.KindLoadDone); err != nil {
		return nil, err
	}
	res.Total = time.Since(start)
	return res, nil
}

func runExport(ctl *wire.Conn, addr string, lg etlscript.Logon, blk *etlscript.ExportBlock, opts Options) (*ExportResult, error) {
	start := time.Now()
	sessions := blk.Sessions
	if opts.Sessions > 0 {
		sessions = opts.Sessions
	}
	if sessions <= 0 {
		sessions = 1
	}
	begin := &wire.BeginExport{
		SQL: blk.Query, Sessions: uint16(sessions),
		Format: blk.Format, Delim: blk.Delim,
	}
	if err := ctl.Send(0, begin); err != nil {
		return nil, err
	}
	m, err := ctl.Expect(wire.KindExportOK)
	if err != nil {
		return nil, fmt.Errorf("etlclient: begin export: %w", err)
	}
	jobID := m.(*wire.ExportOK).JobID

	type got struct {
		seq     uint64
		payload []byte
		rows    uint32
	}
	var mu sync.Mutex
	received := map[uint64]got{}
	var eofSeq atomic.Int64
	eofSeq.Store(-1)
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ec, err := logon(addr, lg)
			if err != nil {
				errs <- err
				return
			}
			defer func() {
				_ = ec.Send(0, &wire.Logoff{})
				ec.Close()
			}()
			for {
				seq := uint64(next.Add(1) - 1)
				if e := eofSeq.Load(); e >= 0 && seq > uint64(e) {
					return
				}
				if err := ec.Send(0, &wire.ExportChunkRq{JobID: jobID, Seq: seq}); err != nil {
					errs <- err
					return
				}
				m, err := ec.Expect(wire.KindExportChunk)
				if err != nil {
					errs <- err
					return
				}
				ck := m.(*wire.ExportChunk)
				mu.Lock()
				if ck.Count > 0 {
					received[seq] = got{seq: seq, payload: ck.Payload, rows: ck.Count}
				}
				mu.Unlock()
				if ck.EOF {
					for {
						cur := eofSeq.Load()
						if cur >= 0 && cur <= int64(seq) {
							break
						}
						if eofSeq.CompareAndSwap(cur, int64(seq)) {
							break
						}
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}

	// assemble output in sequence order
	var out []byte
	var rows int64
	last := eofSeq.Load()
	for seq := uint64(0); last >= 0 && seq <= uint64(last); seq++ {
		if g, ok := received[seq]; ok {
			out = append(out, g.payload...)
			rows += int64(g.rows)
		}
	}
	if err := opts.WriteFile(blk.Outfile, out); err != nil {
		return nil, err
	}
	if err := ctl.Send(0, &wire.EndExport{JobID: jobID}); err != nil {
		return nil, err
	}
	if _, err := ctl.Expect(wire.KindLoadDone); err != nil {
		return nil, err
	}
	return &ExportResult{Outfile: blk.Outfile, Rows: rows, Total: time.Since(start)}, nil
}
