package etlclient

import (
	"strings"
	"testing"

	"etlvirt/internal/ltype"
	"etlvirt/internal/stream"
	"etlvirt/internal/wire"
)

func TestSplitInputVartext(t *testing.T) {
	data := []byte("a|1\nb|2\nc|3\nd|4\ne|5\n")
	chunks, total, err := splitInput(data, wire.FormatVartext, 2)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 || len(chunks) != 3 {
		t.Fatalf("total=%d chunks=%d", total, len(chunks))
	}
	if chunks[0].firstRow != 1 || chunks[0].count != 2 || string(chunks[0].payload) != "a|1\nb|2\n" {
		t.Errorf("chunk0: %+v", chunks[0])
	}
	if chunks[1].firstRow != 3 || chunks[2].firstRow != 5 || chunks[2].count != 1 {
		t.Errorf("chunk row numbering: %+v %+v", chunks[1], chunks[2])
	}
	for i, c := range chunks {
		if c.seq != uint64(i) {
			t.Errorf("chunk %d seq %d", i, c.seq)
		}
	}
}

func TestSplitInputVartextNoTrailingNewline(t *testing.T) {
	chunks, total, err := splitInput([]byte("a|1\nb|2"), wire.FormatVartext, 10)
	if err != nil || total != 2 || len(chunks) != 1 {
		t.Fatalf("chunks=%v total=%d err=%v", chunks, total, err)
	}
}

func TestSplitInputIndicator(t *testing.T) {
	layout := &ltype.Layout{Name: "L", Fields: []ltype.Field{
		{Name: "A", Type: ltype.VarChar(10)},
		{Name: "B", Type: ltype.Simple(ltype.KindInteger)},
	}}
	var data []byte
	var err error
	for i := 0; i < 7; i++ {
		data, err = ltype.EncodeRecord(data, layout, ltype.Record{
			ltype.StringValue(ltype.KindVarChar, strings.Repeat("x", i)),
			ltype.IntValue(ltype.KindInteger, int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	chunks, total, err := splitInput(data, wire.FormatIndicator, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 || len(chunks) != 3 {
		t.Fatalf("total=%d chunks=%d", total, len(chunks))
	}
	// every chunk must decode cleanly on record boundaries
	row := 0
	for _, c := range chunks {
		payload := c.payload
		n := 0
		for len(payload) > 0 {
			rec, used, err := ltype.DecodeRecord(payload, layout)
			if err != nil {
				t.Fatalf("chunk decode: %v", err)
			}
			if rec[1].I != int64(row) {
				t.Errorf("row order broken: got %d want %d", rec[1].I, row)
			}
			payload = payload[used:]
			row++
			n++
		}
		if uint32(n) != c.count {
			t.Errorf("chunk count %d, decoded %d", c.count, n)
		}
	}
}

func TestSplitInputIndicatorTruncated(t *testing.T) {
	layout := &ltype.Layout{Name: "L", Fields: []ltype.Field{
		{Name: "A", Type: ltype.VarChar(10)},
	}}
	data, err := ltype.EncodeRecord(nil, layout, ltype.Record{ltype.StringValue(ltype.KindVarChar, "hello")})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := splitInput(data[:len(data)-2], wire.FormatIndicator, 10); err == nil {
		t.Error("truncated input accepted")
	}
	if _, _, err := splitInput([]byte{0x01}, wire.FormatIndicator, 10); err == nil {
		t.Error("short input accepted")
	}
}

func TestSplitInputEmpty(t *testing.T) {
	chunks, total, err := splitInput(nil, wire.FormatVartext, 10)
	if err != nil || total != 0 || len(chunks) != 0 {
		t.Errorf("empty vartext: %v %d %v", chunks, total, err)
	}
	chunks, total, err = splitInput(nil, wire.FormatIndicator, 10)
	if err != nil || total != 0 || len(chunks) != 0 {
		t.Errorf("empty indicator: %v %d %v", chunks, total, err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ChunkRecords != 500 || o.ReadFile == nil || o.WriteFile == nil {
		t.Errorf("defaults: %+v", o)
	}
}

func TestSplitDeltasVartext(t *testing.T) {
	data := []byte("I|100|Alice\nU|100|Alicia\nD|200|\nD\nI|300|Carol")
	ds, err := splitDeltas(data, wire.FormatVartext, '|')
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		op  stream.Op
		rec string
	}{
		{stream.OpInsert, "100|Alice\n"},
		{stream.OpUpdate, "100|Alicia\n"},
		{stream.OpDelete, "200|\n"},
		{stream.OpDelete, "\n"}, // op-only line: empty record
		{stream.OpInsert, "300|Carol\n"},
	}
	if len(ds) != len(want) {
		t.Fatalf("deltas: %d, want %d", len(ds), len(want))
	}
	for i, w := range want {
		if ds[i].op != w.op || string(ds[i].record) != w.rec {
			t.Errorf("delta %d: op=%c rec=%q, want op=%c rec=%q", i, ds[i].op, ds[i].record, w.op, w.rec)
		}
	}
}

func TestSplitDeltasVartextErrors(t *testing.T) {
	if _, err := splitDeltas([]byte("X|1|a\n"), wire.FormatVartext, '|'); err == nil {
		t.Error("bad op marker accepted")
	}
	if _, err := splitDeltas([]byte("I,1,a\n"), wire.FormatVartext, '|'); err == nil {
		t.Error("wrong delimiter after op accepted")
	}
	ds, err := splitDeltas(nil, wire.FormatVartext, '|')
	if err != nil || len(ds) != 0 {
		t.Errorf("empty input: %v %v", ds, err)
	}
}

func TestSplitDeltasIndicator(t *testing.T) {
	layout := &ltype.Layout{Name: "L", Fields: []ltype.Field{
		{Name: "A", Type: ltype.VarChar(10)},
	}}
	rec, err := ltype.EncodeRecord(nil, layout, ltype.Record{ltype.StringValue(ltype.KindVarChar, "hi")})
	if err != nil {
		t.Fatal(err)
	}
	var data []byte
	data = stream.AppendDelta(data, stream.OpInsert, rec)
	data = stream.AppendDelta(data, stream.OpDelete, rec)
	ds, err := splitDeltas(data, wire.FormatIndicator, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].op != stream.OpInsert || ds[1].op != stream.OpDelete ||
		string(ds[0].record) != string(rec) {
		t.Errorf("deltas: %+v", ds)
	}
	if _, err := splitDeltas(data[:len(data)-2], wire.FormatIndicator, 0); err == nil {
		t.Error("truncated input accepted")
	}
}
