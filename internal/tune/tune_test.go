package tune

import (
	"testing"
	"time"
)

func TestEWMASeedsOnFirstObservation(t *testing.T) {
	var e EWMA
	if e.Seeded() || e.Value() != 0 {
		t.Fatalf("zero EWMA: seeded=%v value=%v", e.Seeded(), e.Value())
	}
	if got := e.Observe(0.3, 10); got != 10 {
		t.Errorf("first observation not adopted outright: %v", got)
	}
	got := e.Observe(0.5, 20)
	if got != 15 {
		t.Errorf("smoothed value %v, want 15", got)
	}
	if e.Value() != 15 {
		t.Errorf("Value %v", e.Value())
	}
}

func TestStepToTargetHoldsInsideDeadband(t *testing.T) {
	for _, obs := range []float64{0.9, 1.0, 1.1} {
		next, a := StepToTarget(100, obs, 1.0, 0.15, 1, 1000)
		if next != 100 || a != ActionHold {
			t.Errorf("obs %v: next=%d action=%v, want hold at 100", obs, next, a)
		}
	}
}

func TestStepToTargetDirections(t *testing.T) {
	// Observation far above target shrinks, clamped to half per step.
	next, a := StepToTarget(100, 10.0, 1.0, 0.15, 1, 1000)
	if a != ActionShrink || next != 50 {
		t.Errorf("shrink: next=%d action=%v, want 50/shrink", next, a)
	}
	// Observation far below target grows, clamped to 1.5x per step.
	next, a = StepToTarget(100, 0.1, 1.0, 0.15, 1, 1000)
	if a != ActionGrow || next != 150 {
		t.Errorf("grow: next=%d action=%v, want 150/grow", next, a)
	}
}

func TestStepToTargetProgressGuarantee(t *testing.T) {
	// A ratio step on a tiny knob truncates to the same value; the law must
	// still move by one.
	next, a := StepToTarget(1, 0.5, 1.0, 0.15, 1, 1000)
	if next != 2 || a != ActionGrow {
		t.Errorf("grow from 1: next=%d action=%v", next, a)
	}
	next, a = StepToTarget(2, 1.3, 1.0, 0.15, 1, 1000)
	if next != 1 || a != ActionShrink {
		t.Errorf("shrink from 2: next=%d action=%v", next, a)
	}
}

func TestStepToTargetPinnedAtClampReportsHold(t *testing.T) {
	next, a := StepToTarget(1000, 0.1, 1.0, 0.15, 1, 1000)
	if next != 1000 || a != ActionHold {
		t.Errorf("pinned at max: next=%d action=%v", next, a)
	}
	next, a = StepToTarget(1, 10.0, 1.0, 0.15, 1, 1000)
	if next != 1 || a != ActionHold {
		t.Errorf("pinned at min: next=%d action=%v", next, a)
	}
}

func TestStepWithLoadGrowsUnderLoad(t *testing.T) {
	// Capacity knob orientation: load above target grows the knob.
	next, a := StepWithLoad(4, 0.99, 0.7, 0.15, 1, 16)
	if a != ActionGrow || next <= 4 {
		t.Errorf("saturated: next=%d action=%v", next, a)
	}
	next, a = StepWithLoad(4, 0.1, 0.7, 0.15, 1, 16)
	if a != ActionShrink || next >= 4 {
		t.Errorf("idle: next=%d action=%v", next, a)
	}
	next, a = StepWithLoad(4, 0.7, 0.7, 0.15, 1, 16)
	if a != ActionHold || next != 4 {
		t.Errorf("on target: next=%d action=%v", next, a)
	}
}

func TestActionString(t *testing.T) {
	if ActionHold.String() != "hold" || ActionGrow.String() != "grow" || ActionShrink.String() != "shrink" {
		t.Error("action labels changed")
	}
}

func tick(workers int, busyPerWorker time.Duration) ImportObservation {
	return ImportObservation{
		Elapsed:    100 * time.Millisecond,
		Workers:    workers,
		UploadBusy: time.Duration(workers) * busyPerWorker,
	}
}

func TestImportTunerGrowsWorkersWhenSaturated(t *testing.T) {
	tu := NewImportTuner(ImportConfig{InitialWorkers: 2, MaxWorkers: 8})
	var d ImportDecision
	for i := 0; i < 20; i++ {
		d = tu.Observe(tick(d.Workers+2, 99*time.Millisecond)) // ~99% busy
	}
	if d.Workers != 8 {
		t.Errorf("saturated lane settled at %d workers, want max 8", d.Workers)
	}
	if tu.Stats().Grows == 0 {
		t.Error("no grow decisions counted")
	}
}

func TestImportTunerShrinksIdleWorkers(t *testing.T) {
	tu := NewImportTuner(ImportConfig{InitialWorkers: 8, MaxWorkers: 8})
	var d ImportDecision
	d.Workers = 8
	for i := 0; i < 20; i++ {
		d = tu.Observe(tick(d.Workers, 2*time.Millisecond)) // ~2% busy
	}
	if d.Workers != 1 {
		t.Errorf("idle lane settled at %d workers, want min 1", d.Workers)
	}
}

func TestImportTunerSpoolTracksFileLatency(t *testing.T) {
	cfg := ImportConfig{
		InitialSpoolBytes: 1 << 20,
		FileLatencyTarget: 100 * time.Millisecond,
	}
	slow := NewImportTuner(cfg)
	for i := 0; i < 20; i++ {
		o := tick(1, 50*time.Millisecond)
		o.FileLatency = 800 * time.Millisecond
		slow.Observe(o)
	}
	if got := slow.Snapshot().SpoolBytes; got >= 1<<20 {
		t.Errorf("slow files did not shrink spool threshold: %d", got)
	}
	fast := NewImportTuner(cfg)
	for i := 0; i < 20; i++ {
		o := tick(1, 50*time.Millisecond)
		o.FileLatency = 10 * time.Millisecond
		fast.Observe(o)
	}
	if got := fast.Snapshot().SpoolBytes; got <= 1<<20 {
		t.Errorf("fast files did not grow spool threshold: %d", got)
	}
}

func TestImportTunerCopyFilesFollowBacklog(t *testing.T) {
	tu := NewImportTuner(ImportConfig{InitialCopyFiles: 2, MaxCopyFiles: 16})
	var d ImportDecision
	for i := 0; i < 30; i++ {
		o := tick(1, 50*time.Millisecond)
		o.QueuedCopyFiles = 12
		d = tu.Observe(o)
	}
	if d.CopyFiles <= 2 {
		t.Errorf("deep backlog did not grow manifest size: %d", d.CopyFiles)
	}
	for i := 0; i < 30; i++ {
		o := tick(1, 50*time.Millisecond)
		o.QueuedCopyFiles = 0
		d = tu.Observe(o)
	}
	if d.CopyFiles != 1 {
		t.Errorf("drained lane did not shrink manifest size to 1: %d", d.CopyFiles)
	}
}

func TestImportTunerGzipLadder(t *testing.T) {
	cfg := ImportConfig{GzipLevels: []int{0, 1, 6, 9}, GzipHysteresis: 3}
	tu := NewImportTuner(cfg)
	if got := tu.Hint().GzipLevel; got != 0 {
		t.Fatalf("initial rung %d, want 0", got)
	}
	// Upload-bound ticks vote for more compression; three consecutive votes
	// move one rung.
	uploadBound := ImportObservation{
		Elapsed: 100 * time.Millisecond, Workers: 1,
		SpoolBusy: 5 * time.Millisecond, UploadBusy: 90 * time.Millisecond,
	}
	for i := 0; i < 3; i++ {
		tu.Observe(uploadBound)
	}
	if got := tu.Hint().GzipLevel; got != 1 {
		t.Errorf("after 3 upload-bound ticks: level %d, want 1", got)
	}
	for i := 0; i < 6; i++ {
		tu.Observe(uploadBound)
	}
	if got := tu.Hint().GzipLevel; got != 9 {
		t.Errorf("sustained upload-bound lane: level %d, want 9", got)
	}
	// CPU-bound ticks walk back down.
	cpuBound := ImportObservation{
		Elapsed: 100 * time.Millisecond, Workers: 1,
		SpoolBusy: 90 * time.Millisecond, UploadBusy: 5 * time.Millisecond,
	}
	for i := 0; i < 3; i++ {
		tu.Observe(cpuBound)
	}
	if got := tu.Hint().GzipLevel; got != 6 {
		t.Errorf("after 3 cpu-bound ticks: level %d, want 6", got)
	}
}

func TestImportTunerGzipHysteresisResetsOnFlip(t *testing.T) {
	tu := NewImportTuner(ImportConfig{GzipLevels: []int{0, 9}, GzipHysteresis: 3})
	uploadBound := ImportObservation{
		Elapsed: 100 * time.Millisecond, Workers: 1,
		SpoolBusy: 5 * time.Millisecond, UploadBusy: 90 * time.Millisecond,
	}
	cpuBound := ImportObservation{
		Elapsed: 100 * time.Millisecond, Workers: 1,
		SpoolBusy: 90 * time.Millisecond, UploadBusy: 5 * time.Millisecond,
	}
	// Alternating ticks flip the vote direction every time, so the run
	// never reaches the hysteresis threshold and the ladder stays put.
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			tu.Observe(uploadBound)
		} else {
			tu.Observe(cpuBound)
		}
	}
	if got := tu.Hint().GzipLevel; got != 0 {
		t.Errorf("oscillating lane moved the ladder: level %d", got)
	}
}

func TestImportTunerSnapshotAndInitialRung(t *testing.T) {
	tu := NewImportTuner(ImportConfig{GzipLevels: []int{0, 1, 6, 9}, InitialGzipLevel: 6})
	if got := tu.Hint().GzipLevel; got != 6 {
		t.Errorf("initial rung for level 6: %d", got)
	}
	o := tick(2, 50*time.Millisecond)
	o.FileLatency = 100 * time.Millisecond
	o.QueuedCopyFiles = 3
	tu.Observe(o)
	s := tu.Snapshot()
	if s.Workers <= 0 || s.SpoolBytes <= 0 || s.CopyFiles <= 0 {
		t.Errorf("snapshot geometry: %+v", s)
	}
	if s.Utilization <= 0 || s.FileLatency <= 0 || s.QueueDepth <= 0 {
		t.Errorf("snapshot EWMAs unobserved: %+v", s)
	}
	if s.Dominant != "upload" {
		t.Errorf("dominant %q", s.Dominant)
	}
}

func TestImportTunerZeroElapsedHolds(t *testing.T) {
	tu := NewImportTuner(ImportConfig{})
	before := tu.Hint()
	d := tu.Observe(ImportObservation{})
	if d.Workers != before.Workers || d.SpoolBytes != before.SpoolBytes || d.Action != ActionHold {
		t.Errorf("zero tick changed geometry: %+v", d)
	}
	if tu.Stats().Holds != 1 {
		t.Errorf("holds %d", tu.Stats().Holds)
	}
}
