package tune

import "time"

// ImportConfig tunes the batch-import staging-lane tuner. Zero values select
// defaults.
type ImportConfig struct {
	// Alpha is the EWMA smoothing factor in (0, 1]. Zero defaults to 0.3.
	Alpha float64
	// Deadband is the fractional hysteresis band inside which knobs hold
	// instead of chasing noise. Zero defaults to 0.15.
	Deadband float64

	// MinWorkers/MaxWorkers clamp the uploader pool size. Zeros default to
	// 1 and 16. InitialWorkers seeds the pool (clamped in).
	MinWorkers     int
	MaxWorkers     int
	InitialWorkers int
	// TargetUtilization is the uploader busy fraction the worker law steers
	// toward: above it the pool grows, below it the pool shrinks. Zero
	// defaults to 0.7.
	TargetUtilization float64

	// MinSpoolBytes/MaxSpoolBytes clamp the spool rotation threshold. Zeros
	// default to 64 KiB and 8 MiB. InitialSpoolBytes seeds it (clamped in).
	MinSpoolBytes     int
	MaxSpoolBytes     int
	InitialSpoolBytes int
	// FileLatencyTarget is the per-file rotate-to-uploaded latency the spool
	// threshold steers toward: slow files shrink the threshold (smaller
	// files clear the lane faster), fast files grow it (amortize per-file
	// overhead). Zero defaults to 250ms.
	FileLatencyTarget time.Duration

	// MinCopyFiles/MaxCopyFiles clamp the files-per-COPY manifest size.
	// Zeros default to 1 and 16. InitialCopyFiles seeds it (clamped in).
	MinCopyFiles     int
	MaxCopyFiles     int
	InitialCopyFiles int

	// GzipLevels is the compression ladder, ordered from cheapest to most
	// aggressive; level 0 means uncompressed files. Nil defaults to
	// {0, 1, 6, 9}. InitialGzipLevel picks the starting rung (the nearest
	// ladder entry).
	GzipLevels       []int
	InitialGzipLevel int
	// GzipHysteresis is how many consecutive same-direction votes the
	// compression law needs before moving one rung — level changes re-open
	// spool files, so they are deliberately sluggish. Zero defaults to 3.
	GzipHysteresis int
}

func (c ImportConfig) withDefaults() ImportConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Deadband <= 0 {
		c.Deadband = 0.15
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 16
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.InitialWorkers <= 0 {
		c.InitialWorkers = c.MinWorkers
	}
	c.InitialWorkers = clampInt(c.InitialWorkers, c.MinWorkers, c.MaxWorkers)
	if c.TargetUtilization <= 0 || c.TargetUtilization > 1 {
		c.TargetUtilization = 0.7
	}
	if c.MinSpoolBytes <= 0 {
		c.MinSpoolBytes = 64 << 10
	}
	if c.MaxSpoolBytes <= 0 {
		c.MaxSpoolBytes = 8 << 20
	}
	if c.MaxSpoolBytes < c.MinSpoolBytes {
		c.MaxSpoolBytes = c.MinSpoolBytes
	}
	if c.InitialSpoolBytes <= 0 {
		c.InitialSpoolBytes = c.MaxSpoolBytes / 2
	}
	c.InitialSpoolBytes = clampInt(c.InitialSpoolBytes, c.MinSpoolBytes, c.MaxSpoolBytes)
	if c.FileLatencyTarget <= 0 {
		c.FileLatencyTarget = 250 * time.Millisecond
	}
	if c.MinCopyFiles <= 0 {
		c.MinCopyFiles = 1
	}
	if c.MaxCopyFiles <= 0 {
		c.MaxCopyFiles = 16
	}
	if c.MaxCopyFiles < c.MinCopyFiles {
		c.MaxCopyFiles = c.MinCopyFiles
	}
	if c.InitialCopyFiles <= 0 {
		c.InitialCopyFiles = c.MinCopyFiles
	}
	c.InitialCopyFiles = clampInt(c.InitialCopyFiles, c.MinCopyFiles, c.MaxCopyFiles)
	if len(c.GzipLevels) == 0 {
		c.GzipLevels = []int{0, 1, 6, 9}
	}
	if c.GzipHysteresis <= 0 {
		c.GzipHysteresis = 3
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ImportObservation is one tuner tick's worth of staging-lane measurements,
// as deltas over the tick. The caller (the import job's tuner loop) samples
// its pipeline counters; the tuner never reads the clock itself.
type ImportObservation struct {
	// Elapsed is the tick length.
	Elapsed time.Duration
	// Workers is the number of live uploader workers during the tick.
	Workers int
	// SpoolBusy is the FileWriter stage's busy time over the tick (chunk
	// append + rotation, i.e. where compression CPU is spent), summed across
	// writers.
	SpoolBusy time.Duration
	// UploadBusy is the uploader stage's busy time over the tick, summed
	// across workers.
	UploadBusy time.Duration
	// FileLatency is the mean per-file upload latency over the tick; zero
	// when no file finished.
	FileLatency time.Duration
	// QueuedCopyFiles is the current uploaded-but-not-yet-COPYed backlog.
	QueuedCopyFiles int
}

// ImportDecision is the tuner's preferred staging-lane geometry after one
// observation.
type ImportDecision struct {
	Workers    int // uploader pool size
	SpoolBytes int // spool rotation threshold
	GzipLevel  int // compression ladder rung; 0 = uncompressed
	CopyFiles  int // files folded into one manifest COPY
	// Action is the worker law's decision this tick — the headline knob the
	// lane scales with. Per-knob actions are visible in the Snapshot.
	Action Action
	// Dominant names the stage with the larger smoothed busy share ("spool"
	// or "upload"); empty until both have been observed.
	Dominant string
}

// ImportStats counts worker-law decisions since construction.
type ImportStats struct {
	Grows   uint64
	Shrinks uint64
	Holds   uint64
}

// ImportSnapshot is the tuner's observable state for the debug server.
type ImportSnapshot struct {
	Workers     int
	SpoolBytes  int
	GzipLevel   int
	CopyFiles   int
	Utilization float64       // smoothed uploader busy fraction
	FileLatency time.Duration // smoothed per-file upload latency
	QueueDepth  float64       // smoothed COPY backlog in files
	Dominant    string
	Stats       ImportStats
}

// ImportTuner closes the loop for the batch-import staging lane: from live
// per-stage observations it picks uploader parallelism, the spool rotation
// threshold, the gzip level, and the files-per-COPY manifest size. It is a
// pure unit (no clock reads) and is not safe for concurrent use; the import
// job serializes ticks through one tuner goroutine.
type ImportTuner struct {
	cfg ImportConfig

	workers    int
	spoolBytes int
	gzipRung   int // index into cfg.GzipLevels
	copyFiles  int

	util    EWMA // uploader busy fraction
	fileLat EWMA // per-file upload latency, seconds
	queue   EWMA // COPY backlog, files
	spoolB  EWMA // spool busy share of the tick
	uploadB EWMA // upload busy share of the tick

	gzipVotes int // signed run of compression votes (+ = more compression)

	stats ImportStats
}

// NewImportTuner builds a staging-lane tuner.
func NewImportTuner(cfg ImportConfig) *ImportTuner {
	cfg = cfg.withDefaults()
	t := &ImportTuner{
		cfg:        cfg,
		workers:    cfg.InitialWorkers,
		spoolBytes: cfg.InitialSpoolBytes,
		copyFiles:  cfg.InitialCopyFiles,
	}
	// Start on the ladder rung nearest the configured initial level.
	best, bestDist := 0, 1<<30
	for i, lvl := range cfg.GzipLevels {
		d := lvl - cfg.InitialGzipLevel
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	t.gzipRung = best
	return t
}

// Hint returns the current geometry without recording an observation.
func (t *ImportTuner) Hint() ImportDecision {
	return ImportDecision{
		Workers:    t.workers,
		SpoolBytes: t.spoolBytes,
		GzipLevel:  t.cfg.GzipLevels[t.gzipRung],
		CopyFiles:  t.copyFiles,
		Dominant:   t.dominant(),
	}
}

// Stats returns worker-law decision counts since construction.
func (t *ImportTuner) Stats() ImportStats { return t.stats }

// Snapshot returns the tuner's observable state for the debug server.
func (t *ImportTuner) Snapshot() ImportSnapshot {
	return ImportSnapshot{
		Workers:     t.workers,
		SpoolBytes:  t.spoolBytes,
		GzipLevel:   t.cfg.GzipLevels[t.gzipRung],
		CopyFiles:   t.copyFiles,
		Utilization: t.util.Value(),
		FileLatency: time.Duration(t.fileLat.Value() * float64(time.Second)),
		QueueDepth:  t.queue.Value(),
		Dominant:    t.dominant(),
		Stats:       t.stats,
	}
}

func (t *ImportTuner) dominant() string {
	if !t.spoolB.Seeded() || !t.uploadB.Seeded() {
		return ""
	}
	if t.spoolB.Value() > t.uploadB.Value() {
		return "spool"
	}
	return "upload"
}

// Observe folds one tick in and returns the geometry for the next tick.
func (t *ImportTuner) Observe(o ImportObservation) ImportDecision {
	if o.Elapsed <= 0 {
		d := t.Hint()
		t.stats.Holds++
		return d
	}
	alpha, db := t.cfg.Alpha, t.cfg.Deadband
	tick := o.Elapsed.Seconds()
	t.spoolB.Observe(alpha, o.SpoolBusy.Seconds()/tick)
	t.uploadB.Observe(alpha, o.UploadBusy.Seconds()/tick)

	// Uploader pool: steer smoothed busy fraction toward the utilization
	// target — saturated workers grow the pool, idle workers shrink it.
	action := ActionHold
	if o.Workers > 0 {
		util := o.UploadBusy.Seconds() / (float64(o.Workers) * tick)
		smoothed := t.util.Observe(alpha, util)
		t.workers, action = StepWithLoad(t.workers, smoothed, t.cfg.TargetUtilization, db,
			t.cfg.MinWorkers, t.cfg.MaxWorkers)
	}
	switch action {
	case ActionGrow:
		t.stats.Grows++
	case ActionShrink:
		t.stats.Shrinks++
	default:
		t.stats.Holds++
	}

	// Spool threshold: steer per-file upload latency toward its target.
	// Files too slow to clear the lane shrink the threshold; files cheap
	// enough grow it to amortize per-file rotate/upload/COPY overhead.
	if o.FileLatency > 0 {
		smoothed := t.fileLat.Observe(alpha, o.FileLatency.Seconds())
		t.spoolBytes, _ = StepToTarget(t.spoolBytes, smoothed, t.cfg.FileLatencyTarget.Seconds(), db,
			t.cfg.MinSpoolBytes, t.cfg.MaxSpoolBytes)
	}

	// Files-per-COPY: track the smoothed uploaded-but-uncopied backlog. The
	// fixed point is manifest size ≈ queue depth: a deep backlog folds more
	// files into each COPY, a drained lane issues small prompt batches.
	queued := t.queue.Observe(alpha, float64(o.QueuedCopyFiles))
	t.copyFiles, _ = StepWithLoad(t.copyFiles, queued, float64(t.copyFiles), db,
		t.cfg.MinCopyFiles, t.cfg.MaxCopyFiles)

	// Compression ladder: when upload dominates the lane the bytes are the
	// bottleneck — vote for more compression; when spool (CPU) dominates,
	// vote for less. Rung moves need GzipHysteresis consecutive votes, and
	// the votes read the tick's raw busy shares (not the EWMAs): the vote
	// run is itself the smoothing, and a lagging average would keep
	// accumulating stale votes after the lane flips.
	{
		spool, upload := o.SpoolBusy.Seconds(), o.UploadBusy.Seconds()
		switch {
		case upload > spool*(1+db):
			if t.gzipVotes < 0 {
				t.gzipVotes = 0
			}
			t.gzipVotes++
		case spool > upload*(1+db):
			if t.gzipVotes > 0 {
				t.gzipVotes = 0
			}
			t.gzipVotes--
		default:
			t.gzipVotes = 0
		}
		if t.gzipVotes >= t.cfg.GzipHysteresis && t.gzipRung < len(t.cfg.GzipLevels)-1 {
			t.gzipRung++
			t.gzipVotes = 0
		}
		if t.gzipVotes <= -t.cfg.GzipHysteresis && t.gzipRung > 0 {
			t.gzipRung--
			t.gzipVotes = 0
		}
	}

	d := t.Hint()
	d.Action = action
	return d
}
