// Package tune holds the adaptive-control machinery shared by the CDC
// micro-batch controller (internal/stream) and the batch-import staging-lane
// tuner: exponentially weighted averages, a hysteresis deadband, and a
// clamped multiplicative step law. Everything here is pure — no clock reads,
// no goroutines — so control decisions are deterministic functions of the
// observations the caller feeds in, and unit tests can drive the loops
// without sleeping.
package tune

// Action classifies one control decision.
type Action uint8

// Control decisions: hold the current knob value, grow it, or shrink it.
const (
	ActionHold Action = iota
	ActionGrow
	ActionShrink
)

// String returns the metric-label spelling of the action.
func (a Action) String() string {
	switch a {
	case ActionGrow:
		return "grow"
	case ActionShrink:
		return "shrink"
	default:
		return "hold"
	}
}

// EWMA is an exponentially weighted moving average. The zero value is
// unseeded: the first observation becomes the average outright, so start-up
// transients are not dragged toward zero.
type EWMA struct {
	v      float64
	seeded bool
}

// Observe folds one sample in with smoothing factor alpha in (0, 1] and
// returns the updated average.
func (e *EWMA) Observe(alpha, x float64) float64 {
	if !e.seeded {
		e.v = x
		e.seeded = true
		return e.v
	}
	e.v += alpha * (x - e.v)
	return e.v
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Seeded reports whether any observation has been folded in.
func (e *EWMA) Seeded() bool { return e.seeded }

// StepToTarget is the damped multiplicative-adjust law: when the smoothed
// observation sits outside the fractional deadband around target, cur is
// scaled by target/smoothed — clamped to [1/2, 3/2] per step so one outlier
// cannot collapse or explode the knob — then clamped to [min, max]. A step
// is guaranteed to make progress (integer truncation cannot stall it), and
// a step pinned at a clamp reports ActionHold. Grow means the observation is
// below target (the knob can afford to increase); shrink means above.
//
// The law contracts toward the fixed point where the observation sits inside
// the band whenever the observed quantity grows monotonically with the knob
// (fixed overhead plus per-unit cost), and the deadband stops it from
// oscillating around the target on noisy measurements.
func StepToTarget(cur int, smoothed, target, deadband float64, min, max int) (int, Action) {
	action := ActionHold
	switch {
	case smoothed > target*(1+deadband):
		action = ActionShrink
	case smoothed < target*(1-deadband):
		action = ActionGrow
	}
	if action == ActionHold {
		return cur, ActionHold
	}
	ratio := target / smoothed
	if ratio < 0.5 {
		ratio = 0.5
	}
	if ratio > 1.5 {
		ratio = 1.5
	}
	next := int(float64(cur) * ratio)
	// Guarantee progress: a ratio step on a tiny knob can truncate to the
	// same value and stall short of the target.
	if action == ActionGrow && next <= cur {
		next = cur + 1
	}
	if action == ActionShrink && next >= cur {
		next = cur - 1
	}
	if next < min {
		next = min
	}
	if next > max {
		next = max
	}
	if next == cur {
		action = ActionHold // pinned at a clamp
	}
	return next, action
}

// StepWithLoad is StepToTarget with the orientation flipped for capacity
// knobs: the knob should GROW when the observed load exceeds the capacity
// target (more workers when utilization is high), so cur is scaled by
// load/capacity instead of target/observation.
func StepWithLoad(cur int, load, capacity, deadband float64, min, max int) (int, Action) {
	return StepToTarget(cur, capacity, load, deadband, min, max)
}
