package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser parses one or more SQL statements.
type Parser struct {
	dialect Dialect
	toks    []Token
	pos     int
}

// NewParser builds a parser for src in the given dialect.
func NewParser(src string, dialect Dialect) (*Parser, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	return &Parser{dialect: dialect, toks: toks}, nil
}

// Parse parses a single statement, requiring end of input (an optional
// trailing semicolon is allowed).
func Parse(src string, dialect Dialect) (Stmt, error) {
	p, err := NewParser(src, dialect)
	if err != nil {
		return nil, err
	}
	s, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		t := p.cur()
		return nil, fmt.Errorf("sqlparse: unexpected %q after statement at line %d", t.Text, t.Line)
	}
	return s, nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(src string, dialect Dialect) ([]Stmt, error) {
	p, err := NewParser(src, dialect)
	if err != nil {
		return nil, err
	}
	var out []Stmt
	for {
		for p.acceptOp(";") {
		}
		if p.atEOF() {
			return out, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.acceptOp(";") && !p.atEOF() {
			t := p.cur()
			return nil, fmt.Errorf("sqlparse: expected ';' at line %d, got %q", t.Line, t.Text)
		}
	}
}

// ParseExpr parses a standalone expression (testing / tooling helper).
func ParseExpr(src string, dialect Dialect) (Expr, error) {
	p, err := NewParser(src, dialect)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		t := p.cur()
		return nil, fmt.Errorf("sqlparse: unexpected %q after expression at line %d", t.Text, t.Line)
	}
	return e, nil
}

// --- token helpers ---

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) peekKw(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if p.acceptKw(kw) {
		return nil
	}
	t := p.cur()
	return fmt.Errorf("sqlparse: expected %s at line %d col %d, got %q", kw, t.Line, t.Col, t.Text)
}

func (p *Parser) peekOp(op string) bool {
	t := p.cur()
	return t.Kind == TokOp && t.Text == op
}

func (p *Parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if p.acceptOp(op) {
		return nil
	}
	t := p.cur()
	return fmt.Errorf("sqlparse: expected %q at line %d col %d, got %q", op, t.Line, t.Col, t.Text)
}

// implicitAlias reports whether the current token can serve as an implicit
// (AS-less) alias. UNION is carved out so it can introduce a set operation.
func (p *Parser) implicitAlias() bool {
	t := p.cur()
	if t.Kind == TokQuotedIdent {
		return true
	}
	return t.Kind == TokIdent && !strings.EqualFold(t.Text, "UNION")
}

// ident accepts an identifier or quoted identifier; some keywords are usable
// as identifiers in column positions (DATE, TIME, etc. are not — keep strict).
func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent || t.Kind == TokQuotedIdent {
		p.pos++
		return t.Text, nil
	}
	return "", fmt.Errorf("sqlparse: expected identifier at line %d col %d, got %q", t.Line, t.Col, t.Text)
}

// --- statements ---

func (p *Parser) parseStatement() (Stmt, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return nil, fmt.Errorf("sqlparse: expected statement at line %d, got %q", t.Line, t.Text)
	}
	switch t.Text {
	case "SELECT", "SEL":
		if t.Text == "SEL" && p.dialect != DialectLegacy {
			return nil, fmt.Errorf("sqlparse: SEL abbreviation is legacy-only (line %d)", t.Line)
		}
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "TRUNCATE":
		return p.parseTruncate()
	case "COPY":
		if p.dialect != DialectCDW {
			return nil, fmt.Errorf("sqlparse: COPY INTO is CDW-only (line %d)", t.Line)
		}
		return p.parseCopy()
	default:
		return nil, fmt.Errorf("sqlparse: unsupported statement %q at line %d", t.Text, t.Line)
	}
}

func (p *Parser) parseTableName() (TableName, error) {
	first, err := p.ident()
	if err != nil {
		return TableName{}, err
	}
	if p.acceptOp(".") {
		second, err := p.ident()
		if err != nil {
			return TableName{}, err
		}
		return TableName{Schema: first, Name: second}, nil
	}
	return TableName{Name: first}, nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	t := p.next() // SELECT / SEL
	if t.Text != "SELECT" && t.Text != "SEL" {
		return nil, fmt.Errorf("sqlparse: internal: parseSelect on %q", t.Text)
	}
	s := &SelectStmt{}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	// legacy TOP n
	if p.dialect == DialectLegacy && p.acceptKw("TOP") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		s.Limit = &n
	}
	// select list
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		s.From = from
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		s.Limit = &n
	}
	if p.cur().Kind == TokIdent && strings.EqualFold(p.cur().Text, "UNION") {
		p.next()
		if err := p.expectKw("ALL"); err != nil {
			return nil, fmt.Errorf("sqlparse: only UNION ALL is supported: %w", err)
		}
		if !p.peekKw("SELECT") && !p.peekKw("SEL") {
			return nil, fmt.Errorf("sqlparse: expected SELECT after UNION ALL at line %d", p.cur().Line)
		}
		// ORDER BY / LIMIT may only trail the final branch; a branch that
		// already consumed them cannot be unioned further.
		if len(s.OrderBy) > 0 || s.Limit != nil {
			return nil, fmt.Errorf("sqlparse: ORDER BY/LIMIT only allowed after the final UNION ALL branch")
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		// By induction the recursive parse hoisted the chain's trailing
		// clauses onto `next`; move them up to this head so interior
		// branches stay plain.
		s.Union = next
		s.OrderBy, next.OrderBy = next.OrderBy, nil
		s.Limit, next.Limit = next.Limit, nil
	}
	return s, nil
}

func (p *Parser) parseIntLiteral() (int64, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, fmt.Errorf("sqlparse: expected number at line %d, got %q", t.Line, t.Text)
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlparse: bad integer %q at line %d", t.Text, t.Line)
	}
	p.pos++
	return n, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// qualified star: ident . *
	if p.cur().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		q := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, StarTable: q}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.implicitAlias() {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseFromList() ([]TableExpr, error) {
	var out []TableExpr
	for {
		te, err := p.parseJoinedTable()
		if err != nil {
			return nil, err
		}
		out = append(out, te)
		if !p.acceptOp(",") {
			return out, nil
		}
	}
}

func (p *Parser) parseJoinedTable() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.acceptKw("JOIN"):
			jt = JoinInner
		case p.peekKw("INNER"):
			p.next()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinInner
		case p.peekKw("LEFT"):
			p.next()
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		case p.peekKw("CROSS"):
			p.next()
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &Join{Type: jt, Left: left, Right: right}
		if jt != JoinCross {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.acceptOp("(") {
		if !p.peekKw("SELECT") && !p.peekKw("SEL") {
			return nil, fmt.Errorf("sqlparse: expected SELECT in derived table at line %d", p.cur().Line)
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st := &SubqueryTable{Select: sub}
		p.acceptKw("AS")
		if p.cur().Kind == TokIdent || p.cur().Kind == TokQuotedIdent {
			st.Alias = p.next().Text
		} else {
			return nil, fmt.Errorf("sqlparse: derived table requires an alias at line %d", p.cur().Line)
		}
		return st, nil
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Table: tn}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.implicitAlias() {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *Parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: tn}
	// optional column list: lookahead for '(' ident ... ')' followed by
	// VALUES/SELECT; "(SELECT" means no column list.
	if p.peekOp("(") && p.pos+1 < len(p.toks) &&
		!(p.toks[p.pos+1].Kind == TokKeyword && (p.toks[p.pos+1].Text == "SELECT" || p.toks[p.pos+1].Text == "SEL")) {
		p.next() // (
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKw("VALUES"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
	case p.peekKw("SELECT") || p.peekKw("SEL"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
	case p.peekOp("("):
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Select = sel
	default:
		return nil, fmt.Errorf("sqlparse: expected VALUES or SELECT at line %d", p.cur().Line)
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Stmt, error) {
	p.next() // UPDATE
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: tn}
	if p.cur().Kind == TokIdent || p.cur().Kind == TokQuotedIdent {
		u.Alias = p.next().Text
	}
	// Legacy places FROM before SET; CDW places it after. Accept both orders.
	if p.acceptKw("FROM") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		u.From = from
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if u.From == nil && p.acceptKw("FROM") {
		from, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		u.From = from
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	// legacy atomic upsert: UPDATE ... ELSE INSERT ...
	if p.acceptKw("ELSE") {
		if p.dialect != DialectLegacy {
			return nil, fmt.Errorf("sqlparse: UPDATE ... ELSE INSERT is legacy-only (line %d)", p.cur().Line)
		}
		if !p.peekKw("INSERT") {
			return nil, fmt.Errorf("sqlparse: expected INSERT after ELSE at line %d", p.cur().Line)
		}
		ins, err := p.parseInsert()
		if err != nil {
			return nil, err
		}
		return &UpsertStmt{Update: u, Insert: ins.(*InsertStmt)}, nil
	}
	return u, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: tn}
	if p.cur().Kind == TokIdent || p.cur().Kind == TokQuotedIdent {
		d.Alias = p.next().Text
	}
	if p.acceptKw("USING") {
		using, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		d.Using = using
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *Parser) parseCreateTable() (Stmt, error) {
	p.next() // CREATE
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	ct.Table = tn
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		case p.acceptKw("UNIQUE"):
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			ct.Unique = append(ct.Unique, cols)
		default:
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			ty, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: name, Type: ty}
			for {
				switch {
				case p.acceptKw("NOT"):
					if err := p.expectKw("NULL"); err != nil {
						return nil, err
					}
					def.NotNull = true
					continue
				case p.acceptKw("NULL"):
					continue
				case p.acceptKw("DEFAULT"):
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					def.Default = e
					continue
				case p.acceptKw("PRIMARY"):
					if err := p.expectKw("KEY"); err != nil {
						return nil, err
					}
					ct.PrimaryKey = []string{def.Name}
					continue
				case p.acceptKw("UNIQUE"):
					ct.Unique = append(ct.Unique, []string{def.Name})
					continue
				}
				break
			}
			ct.Columns = append(ct.Columns, def)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("sqlparse: CREATE TABLE %s has no columns", ct.Table)
	}
	return ct, nil
}

func (p *Parser) parseParenIdentList() ([]string, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseTypeName parses a type spelling in either dialect.
func (p *Parser) parseTypeName() (TypeName, error) {
	t := p.cur()
	var name string
	switch {
	case t.Kind == TokIdent:
		name = strings.ToUpper(p.next().Text)
	case t.Kind == TokKeyword && (t.Text == "DATE" || t.Text == "TIME" || t.Text == "TIMESTAMP" || t.Text == "CHARACTER"):
		name = p.next().Text
	default:
		return TypeName{}, fmt.Errorf("sqlparse: expected type name at line %d, got %q", t.Line, t.Text)
	}
	if name == "CHARACTER" && p.acceptKw("VARYING") {
		name = "VARCHAR"
	}
	if name == "DOUBLE" && p.cur().Kind == TokIdent && strings.EqualFold(p.cur().Text, "PRECISION") {
		p.next()
		name = "FLOAT"
	}
	ty := TypeName{Name: name}
	if p.acceptOp("(") {
		for {
			n, err := p.parseIntLiteral()
			if err != nil {
				return TypeName{}, err
			}
			ty.Args = append(ty.Args, int(n))
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return TypeName{}, err
		}
	}
	if p.acceptKw("CHARACTER") {
		if p.dialect != DialectLegacy {
			return TypeName{}, fmt.Errorf("sqlparse: CHARACTER SET clause is legacy-only (line %d)", p.cur().Line)
		}
		if err := p.expectKw("SET"); err != nil {
			return TypeName{}, err
		}
		cs, err := p.ident()
		if err != nil {
			return TypeName{}, err
		}
		ty.CharSet = strings.ToUpper(cs)
	}
	return ty, nil
}

func (p *Parser) parseDropTable() (Stmt, error) {
	p.next() // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	d := &DropTableStmt{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	d.Table = tn
	return d, nil
}

func (p *Parser) parseTruncate() (Stmt, error) {
	p.next() // TRUNCATE
	p.acceptKw("TABLE")
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Table: tn}, nil
}

func (p *Parser) parseCopy() (Stmt, error) {
	p.next() // COPY
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind != TokString {
		return nil, fmt.Errorf("sqlparse: COPY FROM requires a string URI at line %d", t.Line)
	}
	p.next()
	c := &CopyStmt{Table: tn, From: t.Text, Options: map[string]string{}}
	// FILES is a soft keyword: it only has meaning in this clause position,
	// so it is matched as an identifier instead of widening the keyword set.
	if ft := p.cur(); ft.Kind == TokIdent && strings.EqualFold(ft.Text, "FILES") {
		p.next()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			nt := p.cur()
			if nt.Kind != TokString {
				return nil, fmt.Errorf("sqlparse: COPY FILES requires string names at line %d", nt.Line)
			}
			p.next()
			c.Files = append(c.Files, nt.Text)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("OPTIONS") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			var k string
			if kt := p.cur(); kt.Kind == TokKeyword {
				p.next()
				k = kt.Text
			} else {
				var err error
				if k, err = p.ident(); err != nil {
					return nil, err
				}
			}
			vt := p.cur()
			if vt.Kind != TokString {
				return nil, fmt.Errorf("sqlparse: COPY option %s requires a string value at line %d", k, vt.Line)
			}
			p.next()
			c.Options[strings.ToLower(k)] = vt.Text
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// --- expressions (precedence climbing) ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		// IS [NOT] NULL, [NOT] IN/BETWEEN/LIKE
		if p.acceptKw("IS") {
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Not: not}
			continue
		}
		not := false
		save := p.pos
		if p.acceptKw("NOT") {
			not = true
		}
		switch {
		case p.acceptKw("IN"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			in := &InExpr{X: l, Not: not}
			if p.peekKw("SELECT") || p.peekKw("SEL") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				in.Sub = sub
			} else {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					in.List = append(in.List, e)
					if !p.acceptOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = in
			continue
		case p.acceptKw("BETWEEN"):
			lo, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}
			continue
		case p.acceptKw("LIKE"):
			pat, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			l = &LikeExpr{X: l, Pattern: pat, Not: not}
			continue
		}
		if not {
			// NOT did not introduce IN/BETWEEN/LIKE: it belongs to a boolean
			// context above us.
			p.pos = save
			return l, nil
		}
		op := ""
		for _, cand := range []string{"=", "<>", "<=", ">=", "<", ">"} {
			if p.peekOp(cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return l, nil
		}
		p.next()
		r, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseConcat() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("||") {
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parsePower()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		case p.acceptKw("MOD"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *Parser) parsePower() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	// right-associative
	if p.acceptOp("**") {
		r, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "**", L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.acceptOp("+") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "+", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparse: bad number %q at line %d", t.Text, t.Line)
			}
			return &Literal{Kind: LitFloat, Float: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, fmt.Errorf("sqlparse: bad number %q at line %d", t.Text, t.Line)
			}
			return &Literal{Kind: LitFloat, Float: f}, nil
		}
		return &Literal{Kind: LitInt, Int: n}, nil

	case TokString:
		p.next()
		return &Literal{Kind: LitString, Str: t.Text}, nil

	case TokPlaceholder:
		if p.dialect != DialectLegacy {
			return nil, fmt.Errorf("sqlparse: placeholder :%s not allowed in %s dialect (line %d)", t.Text, p.dialect, t.Line)
		}
		p.next()
		return &Placeholder{Name: t.Text}, nil

	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Kind: LitNull}, nil
		case "TRUE":
			p.next()
			return &Literal{Kind: LitBool, Bool: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Kind: LitBool, Bool: false}, nil
		case "DATE":
			// DATE 'YYYY-MM-DD' literal
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokString {
				p.next()
				s := p.next()
				return &Literal{Kind: LitDate, Str: s.Text}, nil
			}
			return nil, fmt.Errorf("sqlparse: bare DATE keyword at line %d", t.Line)
		case "CAST":
			return p.parseCast()
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		case "MOD":
			// MOD is both an infix operator and a two-argument function.
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "(" {
				p.next() // MOD
				p.next() // (
				l, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(","); err != nil {
					return nil, err
				}
				r, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &FuncCall{Name: "MOD", Args: []Expr{l, r}}, nil
			}
		case "COUNT":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			fc := &FuncCall{Name: "COUNT"}
			if p.acceptOp("*") {
				fc.Args = []Expr{&Star{}}
			} else {
				if p.acceptKw("DISTINCT") {
					fc.Distinct = true
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = []Expr{e}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		return nil, fmt.Errorf("sqlparse: unexpected keyword %q in expression at line %d", t.Text, t.Line)

	case TokIdent, TokQuotedIdent:
		p.next()
		// function call?
		if t.Kind == TokIdent && p.peekOp("(") {
			p.next() // (
			fc := &FuncCall{Name: strings.ToUpper(t.Text)}
			if p.acceptKw("DISTINCT") {
				fc.Distinct = true
			}
			if !p.acceptOp(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// qualified column
		if p.acceptOp(".") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: t.Text, Name: name}, nil
		}
		return &ColRef{Name: t.Text}, nil

	case TokOp:
		if t.Text == "(" {
			p.next()
			if p.peekKw("SELECT") || p.peekKw("SEL") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sqlparse: unexpected token %q at line %d col %d", t.Text, t.Line, t.Col)
}

func (p *Parser) parseCast() (Expr, error) {
	p.next() // CAST
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	ty, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	c := &CastExpr{X: x, Type: ty}
	if p.acceptKw("FORMAT") {
		if p.dialect != DialectLegacy {
			return nil, fmt.Errorf("sqlparse: CAST ... FORMAT is legacy-only (line %d)", p.cur().Line)
		}
		ft := p.cur()
		if ft.Kind != TokString {
			return nil, fmt.Errorf("sqlparse: FORMAT requires a string at line %d", ft.Line)
		}
		p.next()
		c.Format = ft.Text
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCase() (Expr, error) {
	p.next() // CASE
	c := &CaseExpr{}
	if !p.peekKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sqlparse: CASE requires at least one WHEN at line %d", p.cur().Line)
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
