package sqlparse

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string, d Dialect) Stmt {
	t.Helper()
	s, err := Parse(src, d)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll(`SELECT a, "Quoted Id", 'it''s', 1.5e3, :FIELD -- comment
		/* block
		comment */ <> != <= || **`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "Quoted Id", ",", "it's", ",", "1.5e3", ",", "FIELD", "<>", "<>", "<=", "||", "**"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("tokens = %q, want %q", texts, want)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "/* unterminated", "SELECT @"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := LexAll("SELECT\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("x at line %d col %d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestParseExample21Insert(t *testing.T) {
	// The DML from the paper's Example 2.1.
	src := `insert into PROD.CUSTOMER values (
		trim(:CUST_ID), trim(:CUST_NAME),
		cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') )`
	s := mustParse(t, src, DialectLegacy)
	ins, ok := s.(*InsertStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ins.Table.Schema != "PROD" || ins.Table.Name != "CUSTOMER" {
		t.Errorf("table = %v", ins.Table)
	}
	if len(ins.Rows) != 1 || len(ins.Rows[0]) != 3 {
		t.Fatalf("rows = %v", ins.Rows)
	}
	c, ok := ins.Rows[0][2].(*CastExpr)
	if !ok {
		t.Fatalf("third value is %T", ins.Rows[0][2])
	}
	if c.Type.Name != "DATE" || c.Format != "YYYY-MM-DD" {
		t.Errorf("cast = %+v", c)
	}
	if _, ok := c.X.(*Placeholder); !ok {
		t.Errorf("cast operand is %T", c.X)
	}
}

func TestPlaceholderRejectedInCDW(t *testing.T) {
	if _, err := Parse("insert into t values (:X)", DialectCDW); err == nil {
		t.Error("placeholder accepted in CDW dialect")
	}
	if _, err := Parse("select cast(x as DATE format 'Y') from t", DialectCDW); err == nil {
		t.Error("FORMAT cast accepted in CDW dialect")
	}
	if _, err := Parse("sel * from t", DialectCDW); err == nil {
		t.Error("SEL accepted in CDW dialect")
	}
}

func TestParseSelectFull(t *testing.T) {
	src := `SELECT DISTINCT c.id, count(*) AS n, sum(v.amt) total
		FROM prod.customer c
		LEFT JOIN prod.visits v ON c.id = v.cust_id
		WHERE c.joined >= DATE '2020-01-01' AND c.region IN ('a','b')
		GROUP BY c.id HAVING count(*) > 2
		ORDER BY n DESC, c.id LIMIT 10`
	s := mustParse(t, src, DialectCDW).(*SelectStmt)
	if !s.Distinct || len(s.Items) != 3 || s.Limit == nil || *s.Limit != 10 {
		t.Errorf("select head wrong: %+v", s)
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order by wrong: %+v", s.OrderBy)
	}
	j, ok := s.From[0].(*Join)
	if !ok || j.Type != JoinLeft {
		t.Fatalf("from = %#v", s.From[0])
	}
	if s.Items[1].Alias != "n" || s.Items[2].Alias != "total" {
		t.Errorf("aliases: %q %q", s.Items[1].Alias, s.Items[2].Alias)
	}
}

func TestParseLegacyTopAndSel(t *testing.T) {
	s := mustParse(t, "SEL TOP 5 * FROM t", DialectLegacy).(*SelectStmt)
	if s.Limit == nil || *s.Limit != 5 {
		t.Errorf("TOP not captured: %+v", s)
	}
	if !s.Items[0].Star {
		t.Error("star item missing")
	}
}

func TestParseQualifiedStar(t *testing.T) {
	s := mustParse(t, "SELECT t.*, u.x FROM t, u", DialectCDW).(*SelectStmt)
	if !s.Items[0].Star || s.Items[0].StarTable != "t" {
		t.Errorf("qualified star: %+v", s.Items[0])
	}
	if len(s.From) != 2 {
		t.Errorf("comma from list: %d", len(s.From))
	}
}

func TestParseInsertSelect(t *testing.T) {
	s := mustParse(t, "INSERT INTO tgt (a, b) SELECT x, y FROM src WHERE x > 0", DialectCDW).(*InsertStmt)
	if s.Select == nil || len(s.Columns) != 2 {
		t.Fatalf("insert-select: %+v", s)
	}
	// parenthesized select
	s = mustParse(t, "INSERT INTO tgt (SELECT x FROM src)", DialectCDW).(*InsertStmt)
	if s.Select == nil || len(s.Columns) != 0 {
		t.Fatalf("paren insert-select: %+v", s)
	}
}

func TestParseMultiRowValues(t *testing.T) {
	s := mustParse(t, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, NULL)", DialectCDW).(*InsertStmt)
	if len(s.Rows) != 3 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	if s.Rows[2][1].(*Literal).Kind != LitNull {
		t.Error("NULL literal wrong")
	}
}

func TestParseUpdateBothFromOrders(t *testing.T) {
	legacy := mustParse(t, "UPDATE tgt FROM stage s SET v = s.v WHERE tgt.k = s.k", DialectLegacy).(*UpdateStmt)
	cdw := mustParse(t, "UPDATE tgt SET v = s.v FROM stage s WHERE tgt.k = s.k", DialectCDW).(*UpdateStmt)
	for _, u := range []*UpdateStmt{legacy, cdw} {
		if len(u.From) != 1 || len(u.Set) != 1 || u.Where == nil {
			t.Errorf("update: %+v", u)
		}
	}
}

func TestParseDeleteUsing(t *testing.T) {
	d := mustParse(t, "DELETE FROM tgt t USING stage s WHERE t.k = s.k", DialectCDW).(*DeleteStmt)
	if d.Alias != "t" || len(d.Using) != 1 || d.Where == nil {
		t.Errorf("delete: %+v", d)
	}
}

func TestParseCreateTable(t *testing.T) {
	src := `CREATE TABLE IF NOT EXISTS prod.customer (
		cust_id VARCHAR(5) NOT NULL,
		cust_name VARCHAR(50) CHARACTER SET UNICODE,
		join_date DATE,
		balance DECIMAL(10,2) DEFAULT 0,
		PRIMARY KEY (cust_id),
		UNIQUE (cust_name, join_date)
	)`
	ct := mustParse(t, src, DialectLegacy).(*CreateTableStmt)
	if !ct.IfNotExists || len(ct.Columns) != 4 {
		t.Fatalf("create: %+v", ct)
	}
	if !ct.Columns[0].NotNull || ct.Columns[0].Type.Name != "VARCHAR" || ct.Columns[0].Type.Args[0] != 5 {
		t.Errorf("col0: %+v", ct.Columns[0])
	}
	if ct.Columns[1].Type.CharSet != "UNICODE" {
		t.Errorf("col1 charset: %+v", ct.Columns[1])
	}
	if ct.Columns[3].Default == nil {
		t.Error("default missing")
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "cust_id" {
		t.Errorf("pk: %v", ct.PrimaryKey)
	}
	if len(ct.Unique) != 1 || len(ct.Unique[0]) != 2 {
		t.Errorf("unique: %v", ct.Unique)
	}
}

func TestParseInlinePrimaryKey(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(10) UNIQUE)", DialectCDW).(*CreateTableStmt)
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "id" {
		t.Errorf("pk: %v", ct.PrimaryKey)
	}
	if len(ct.Unique) != 1 || ct.Unique[0][0] != "v" {
		t.Errorf("unique: %v", ct.Unique)
	}
}

func TestParseDropTruncate(t *testing.T) {
	d := mustParse(t, "DROP TABLE IF EXISTS s.t", DialectCDW).(*DropTableStmt)
	if !d.IfExists || d.Table.Schema != "s" {
		t.Errorf("drop: %+v", d)
	}
	tr := mustParse(t, "TRUNCATE TABLE t", DialectCDW).(*TruncateStmt)
	if tr.Table.Name != "t" {
		t.Errorf("truncate: %+v", tr)
	}
}

func TestParseCopy(t *testing.T) {
	c := mustParse(t, "COPY INTO stage FROM 'store://job1/' OPTIONS (format 'csv', gzip 'true')", DialectCDW).(*CopyStmt)
	if c.From != "store://job1/" || c.Options["format"] != "csv" || c.Options["gzip"] != "true" {
		t.Errorf("copy: %+v", c)
	}
	if len(c.Files) != 0 {
		t.Errorf("prefix copy grew a manifest: %+v", c.Files)
	}
}

func TestParseCopyFilesManifest(t *testing.T) {
	c := mustParse(t, "COPY INTO stage FROM 'store://job1/' FILES ('a.csv', 'b.csv.gz') OPTIONS (format 'csv')",
		DialectCDW).(*CopyStmt)
	if len(c.Files) != 2 || c.Files[0] != "a.csv" || c.Files[1] != "b.csv.gz" {
		t.Errorf("manifest: %+v", c.Files)
	}
	if c.Options["format"] != "csv" {
		t.Errorf("options after manifest: %+v", c.Options)
	}
	// manifest without options
	c = mustParse(t, "COPY INTO stage FROM 'store://job1/' FILES ('only.csv')", DialectCDW).(*CopyStmt)
	if len(c.Files) != 1 || c.Files[0] != "only.csv" {
		t.Errorf("manifest: %+v", c.Files)
	}
	// non-string manifest entries are rejected
	if _, err := Parse("COPY INTO stage FROM 'store://job1/' FILES (a)", DialectCDW); err == nil {
		t.Error("bare identifier in FILES accepted")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 - 4", DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	// ((1 + (2*3)) - 4)
	top := e.(*BinaryExpr)
	if top.Op != "-" {
		t.Fatalf("top op %q", top.Op)
	}
	l := top.L.(*BinaryExpr)
	if l.Op != "+" || l.R.(*BinaryExpr).Op != "*" {
		t.Errorf("precedence wrong: %+v", l)
	}

	e, err = ParseExpr("a OR b AND NOT c = d", DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	or := e.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top %q", or.Op)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("and %q", and.Op)
	}
	if _, ok := and.R.(*UnaryExpr); !ok {
		t.Errorf("NOT missing: %T", and.R)
	}
}

func TestParsePowerRightAssoc(t *testing.T) {
	e, err := ParseExpr("2 ** 3 ** 2", DialectLegacy)
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*BinaryExpr)
	if top.Op != "**" {
		t.Fatal("top not **")
	}
	if r, ok := top.R.(*BinaryExpr); !ok || r.Op != "**" {
		t.Error("** should be right-associative")
	}
}

func TestParseComplexPredicates(t *testing.T) {
	e, err := ParseExpr("x IS NOT NULL AND y NOT IN (1,2) AND z NOT BETWEEN 1 AND 5 AND w NOT LIKE 'a%'", DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	walkExpr(e, func(x Expr) {
		switch v := x.(type) {
		case *IsNullExpr:
			if v.Not {
				kinds = append(kinds, "isnotnull")
			}
		case *InExpr:
			if v.Not {
				kinds = append(kinds, "notin")
			}
		case *BetweenExpr:
			if v.Not {
				kinds = append(kinds, "notbetween")
			}
		case *LikeExpr:
			if v.Not {
				kinds = append(kinds, "notlike")
			}
		}
	})
	if len(kinds) != 4 {
		t.Errorf("predicates found: %v", kinds)
	}
}

func TestParseInSubqueryAndExists(t *testing.T) {
	e, err := ParseExpr("x IN (SELECT id FROM t) AND EXISTS (SELECT 1 FROM u WHERE u.k = x)", DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	and := e.(*BinaryExpr)
	in := and.L.(*InExpr)
	if in.Sub == nil {
		t.Error("IN subquery missing")
	}
	ex := and.R.(*ExistsExpr)
	if ex.Sub == nil {
		t.Error("EXISTS subquery missing")
	}
}

func TestParseScalarSubquery(t *testing.T) {
	e, err := ParseExpr("(SELECT max(x) FROM t) + 1", DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*BinaryExpr)
	if _, ok := b.L.(*SubqueryExpr); !ok {
		t.Errorf("scalar subquery: %T", b.L)
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'lo' ELSE NULL END", DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*CaseExpr)
	if c.Operand != nil || len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case: %+v", c)
	}
	e, err = ParseExpr("CASE x WHEN 1 THEN 'a' END", DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	c = e.(*CaseExpr)
	if c.Operand == nil || len(c.Whens) != 1 || c.Else != nil {
		t.Errorf("operand case: %+v", c)
	}
	if _, err := ParseExpr("CASE END", DialectCDW); err == nil {
		t.Error("empty CASE accepted")
	}
}

func TestParseCountVariants(t *testing.T) {
	for _, src := range []string{"count(*)", "count(x)", "count(DISTINCT x)", "COUNT ( * )"} {
		e, err := ParseExpr(src, DialectCDW)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		fc := e.(*FuncCall)
		if fc.Name != "COUNT" || len(fc.Args) != 1 {
			t.Errorf("%q -> %+v", src, fc)
		}
	}
}

func TestParseConcatAndMod(t *testing.T) {
	e, err := ParseExpr("a || b || 'x'", DialectLegacy)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinaryExpr).Op != "||" {
		t.Error("concat wrong")
	}
	e, err = ParseExpr("a MOD 3", DialectLegacy)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinaryExpr).Op != "%" {
		t.Error("MOD wrong")
	}
}

func TestParseAllMultiStatement(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);;
		SELECT * FROM t;
	`, DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "SELECT", "SELECT FROM t", "INSERT t VALUES (1)",
		"INSERT INTO t", "UPDATE t", "DELETE t", "CREATE TABLE t",
		"CREATE TABLE t ()", "SELECT * FROM", "SELECT a FROM t WHERE",
		"SELECT a b c FROM t", "COPY INTO t FROM x", "DROP t",
		"SELECT * FROM (SELECT 1)", // derived table needs alias
		"SELECT * FROM t JOIN u",   // missing ON
		"SELECT (1", "INSERT INTO t VALUES (1", "GRANT ALL",
	}
	for _, src := range bad {
		if _, err := Parse(src, DialectCDW); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestWalkExprsCoversSubqueries(t *testing.T) {
	s := mustParse(t, `SELECT (SELECT max(y) FROM u WHERE u.k = t.k) FROM t
		WHERE EXISTS (SELECT 1 FROM v WHERE v.n IN (SELECT n FROM w))`, DialectCDW)
	count := 0
	WalkExprs(s, func(e Expr) {
		if c, ok := e.(*ColRef); ok && strings.EqualFold(c.Name, "n") {
			count++
		}
	})
	if count < 2 {
		t.Errorf("walk missed subquery columns: %d", count)
	}
}

func TestParseUpsert(t *testing.T) {
	src := `UPDATE t SET v = :V WHERE k = :K ELSE INSERT INTO t VALUES (:K, :V)`
	s := mustParse(t, src, DialectLegacy)
	up, ok := s.(*UpsertStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if up.Update.Where == nil || len(up.Update.Set) != 1 {
		t.Errorf("update half: %+v", up.Update)
	}
	if len(up.Insert.Rows) != 1 || len(up.Insert.Rows[0]) != 2 {
		t.Errorf("insert half: %+v", up.Insert)
	}
	// legacy-only
	if _, err := Parse("UPDATE t SET v = 1 WHERE k = 1 ELSE INSERT INTO t VALUES (1, 2)", DialectCDW); err == nil {
		t.Error("upsert accepted in CDW dialect")
	}
	// print round trip in legacy dialect
	out, err := Print(s, DialectLegacy)
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustParse(t, out, DialectLegacy)
	if _, ok := s2.(*UpsertStmt); !ok {
		t.Errorf("reprint lost upsert: %s", out)
	}
	// CDW printing must refuse
	if _, err := Print(s, DialectCDW); err == nil {
		t.Error("upsert printed in CDW dialect")
	}
	// ELSE must be followed by INSERT
	if _, err := Parse("UPDATE t SET v = 1 WHERE k = 1 ELSE DELETE FROM t", DialectLegacy); err == nil {
		t.Error("ELSE DELETE accepted")
	}
}

// Regressions found by FuzzParse.
func TestFuzzRegressions(t *testing.T) {
	// a table with constraints but no columns must not parse
	if _, err := Parse("CREATE TABLE A(PRIMARY KEY(A))", DialectCDW); err == nil {
		t.Error("column-less CREATE TABLE accepted")
	}
	// CHARACTER SET is legacy-only
	if _, err := Parse("CREATE TABLE A(A VARCHAR(5) CHARACTER SET UNICODE)", DialectCDW); err == nil {
		t.Error("CHARACTER SET accepted in CDW dialect")
	}
	// COPY INTO is CDW-only
	if _, err := Parse("COPY INTO t FROM 'store://x/'", DialectLegacy); err == nil {
		t.Error("COPY accepted in legacy dialect")
	}
	// legacy cannot express a limit over a union
	s := mustParse(t, "SEL a FROM t UNION ALL SEL TOP 3 b FROM u", DialectLegacy)
	if _, err := Print(s, DialectLegacy); err == nil {
		t.Error("legacy union+limit printed")
	}
}
