package sqlparse

import (
	"reflect"
	"testing"
)

// roundTrip asserts print(parse(src)) reaches a fixpoint: parsing the printed
// text and printing again yields identical text and an equal AST.
func roundTrip(t *testing.T, src string, d Dialect) string {
	t.Helper()
	s1, err := Parse(src, d)
	if err != nil {
		t.Fatalf("parse 1 (%q): %v", src, err)
	}
	p1, err := Print(s1, d)
	if err != nil {
		t.Fatalf("print 1 (%q): %v", src, err)
	}
	s2, err := Parse(p1, d)
	if err != nil {
		t.Fatalf("parse 2 (%q -> %q): %v", src, p1, err)
	}
	p2, err := Print(s2, d)
	if err != nil {
		t.Fatalf("print 2: %v", err)
	}
	if p1 != p2 {
		t.Errorf("print not a fixpoint:\n 1: %s\n 2: %s", p1, p2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("AST changed across round trip for %q:\n%s", src, p1)
	}
	return p1
}

func TestPrintRoundTrips(t *testing.T) {
	legacy := []string{
		"SELECT * FROM t",
		"SEL TOP 3 a, b AS c FROM prod.t WHERE a > 1",
		"insert into PROD.CUSTOMER values (trim(:CUST_ID), trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))",
		"UPDATE tgt FROM stage s SET v = s.v, w = s.w + 1 WHERE tgt.k = s.k",
		"DELETE FROM t WHERE x IS NULL",
		"CREATE TABLE t (a VARCHAR(5) CHARACTER SET UNICODE NOT NULL, b DECIMAL(10,2) DEFAULT 0, PRIMARY KEY (a))",
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT a MOD 2, b ** 2 ** 3, 'it''s' FROM t",
		"SELECT cast(x as CHAR(3)) FROM t WHERE d = DATE '2020-02-29'",
	}
	for _, src := range legacy {
		roundTrip(t, src, DialectLegacy)
	}
	cdw := []string{
		"SELECT DISTINCT a, count(*) AS n FROM t GROUP BY a HAVING count(*) > 1 ORDER BY n DESC LIMIT 5",
		"SELECT t.*, u.x FROM t LEFT JOIN u ON t.k = u.k CROSS JOIN v",
		"INSERT INTO tgt (a, b) SELECT x, y FROM src",
		"INSERT INTO t VALUES (1, 'a'), (2, NULL)",
		"UPDATE tgt SET v = s.v FROM stage s WHERE tgt.k = s.k AND s.n BETWEEN 1 AND 5",
		"DELETE FROM tgt t USING stage s WHERE t.k = s.k",
		"COPY INTO stage FROM 'store://x/' OPTIONS (format 'csv', gzip 'true')",
		"COPY INTO stage FROM 'store://x/' FILES ('part-00001.csv', 'part-00002.csv.gz') OPTIONS (format 'csv')",
		"SELECT * FROM (SELECT a FROM t WHERE a IN (1, 2)) d WHERE EXISTS (SELECT 1 FROM u)",
		"SELECT x - (y - z), x - y - z, -x + 4, a / (b / c) FROM t",
		"SELECT \"weird name\", \"select\" FROM \"my table\"",
		"TRUNCATE TABLE t",
		"DROP TABLE IF EXISTS s.t",
		"SELECT x FROM t WHERE NOT (a AND b) OR c",
		"SELECT to_date(s, 'YYYY-MM-DD') FROM t",
		"SELECT 1.5, 2.0, 1e9, 0.25 FROM t",
	}
	for _, src := range cdw {
		roundTrip(t, src, DialectCDW)
	}
}

func TestPrintPreservesEvaluationOrder(t *testing.T) {
	// a - (b + c) must keep parens.
	got := roundTrip(t, "SELECT a - (b + c) FROM t", DialectCDW)
	if got != "SELECT a - (b + c) FROM t" {
		t.Errorf("got %q", got)
	}
	got = roundTrip(t, "SELECT (a + b) * c FROM t", DialectCDW)
	if got != "SELECT (a + b) * c FROM t" {
		t.Errorf("got %q", got)
	}
}

func TestPrintRejectsLegacyConstructsInCDW(t *testing.T) {
	s := mustParse(t, "insert into t values (:X)", DialectLegacy)
	if _, err := Print(s, DialectCDW); err == nil {
		t.Error("placeholder printed in CDW dialect")
	}
	s = mustParse(t, "select cast(x as DATE format 'YYYY-MM-DD') from t", DialectLegacy)
	if _, err := Print(s, DialectCDW); err == nil {
		t.Error("FORMAT cast printed in CDW dialect")
	}
	s = mustParse(t, "create table t (a VARCHAR(5) CHARACTER SET UNICODE)", DialectLegacy)
	if _, err := Print(s, DialectCDW); err == nil {
		t.Error("CHARACTER SET printed in CDW dialect")
	}
}

func TestPrintTopVsLimit(t *testing.T) {
	s := mustParse(t, "SEL TOP 7 a FROM t", DialectLegacy)
	leg, err := Print(s, DialectLegacy)
	if err != nil {
		t.Fatal(err)
	}
	if leg != "SELECT TOP 7 a FROM t" {
		t.Errorf("legacy print %q", leg)
	}
	cdw, err := Print(s, DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	if cdw != "SELECT a FROM t LIMIT 7" {
		t.Errorf("cdw print %q", cdw)
	}
}

func TestPrintQuoting(t *testing.T) {
	s := mustParse(t, `SELECT "from", "has ""quote""" FROM "order"`, DialectCDW)
	out, err := Print(s, DialectCDW)
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT "from", "has ""quote""" FROM "order"`
	if out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestPrintStringEscaping(t *testing.T) {
	s := mustParse(t, "SELECT 'it''s' FROM t", DialectCDW)
	out, _ := Print(s, DialectCDW)
	if out != "SELECT 'it''s' FROM t" {
		t.Errorf("got %q", out)
	}
}

func TestPrintUnionRoundTrips(t *testing.T) {
	for _, src := range []string{
		"SELECT a FROM t UNION ALL SELECT b FROM u",
		"SELECT a FROM t UNION ALL SELECT b FROM u UNION ALL SELECT c FROM v ORDER BY a DESC LIMIT 5",
		"SELECT count(*) FROM (SELECT a FROM t UNION ALL SELECT b FROM u) d",
	} {
		roundTrip(t, src, DialectCDW)
	}
	// legacy dialect too
	roundTrip(t, "SEL a FROM t UNION ALL SEL b FROM u", DialectLegacy)
}
