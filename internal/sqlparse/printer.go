package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a statement as SQL text in the given dialect. Printing a
// construct the dialect cannot express (e.g. a Placeholder or FORMAT cast in
// DialectCDW) returns an error — this is the safety net ensuring the
// cross-compiler rewrote everything before execution.
func Print(s Stmt, d Dialect) (string, error) {
	p := &printer{dialect: d}
	p.stmt(s)
	if p.err != nil {
		return "", p.err
	}
	return p.sb.String(), nil
}

// PrintExpr renders one expression in the given dialect.
func PrintExpr(e Expr, d Dialect) (string, error) {
	p := &printer{dialect: d}
	p.expr(e)
	if p.err != nil {
		return "", p.err
	}
	return p.sb.String(), nil
}

type printer struct {
	dialect Dialect
	sb      strings.Builder
	err     error
}

func (p *printer) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("sqlparse: "+format, args...)
	}
}

func (p *printer) w(s string)               { p.sb.WriteString(s) }
func (p *printer) wf(f string, args ...any) { fmt.Fprintf(&p.sb, f, args...) }

// ident quotes an identifier when needed.
func (p *printer) ident(s string) {
	if needsQuoting(s) {
		p.w(`"` + strings.ReplaceAll(s, `"`, `""`) + `"`)
	} else {
		p.w(s)
	}
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	if !isIdentStart(s[0]) {
		return true
	}
	for i := 1; i < len(s); i++ {
		if !isIdentCont(s[i]) {
			return true
		}
	}
	return keywords[strings.ToUpper(s)]
}

func (p *printer) table(t TableName) {
	if t.Schema != "" {
		p.ident(t.Schema)
		p.w(".")
	}
	p.ident(t.Name)
}

func (p *printer) typeName(t TypeName) {
	p.w(t.Name)
	if len(t.Args) > 0 {
		p.w("(")
		for i, a := range t.Args {
			if i > 0 {
				p.w(",")
			}
			p.w(strconv.Itoa(a))
		}
		p.w(")")
	}
	if t.CharSet != "" {
		if p.dialect == DialectCDW {
			p.fail("CHARACTER SET clause not supported in CDW dialect")
			return
		}
		p.w(" CHARACTER SET " + t.CharSet)
	}
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *SelectStmt:
		p.selectStmt(st)
	case *InsertStmt:
		p.w("INSERT INTO ")
		p.table(st.Table)
		if len(st.Columns) > 0 {
			p.w(" (")
			for i, c := range st.Columns {
				if i > 0 {
					p.w(", ")
				}
				p.ident(c)
			}
			p.w(")")
		}
		if st.Select != nil {
			p.w(" ")
			p.selectStmt(st.Select)
			return
		}
		p.w(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				p.w(", ")
			}
			p.w("(")
			for j, e := range row {
				if j > 0 {
					p.w(", ")
				}
				p.expr(e)
			}
			p.w(")")
		}
	case *UpdateStmt:
		p.w("UPDATE ")
		p.table(st.Table)
		if st.Alias != "" {
			p.w(" ")
			p.ident(st.Alias)
		}
		p.w(" SET ")
		for i, a := range st.Set {
			if i > 0 {
				p.w(", ")
			}
			p.ident(a.Column)
			p.w(" = ")
			p.expr(a.Value)
		}
		if len(st.From) > 0 {
			p.w(" FROM ")
			p.fromList(st.From)
		}
		if st.Where != nil {
			p.w(" WHERE ")
			p.expr(st.Where)
		}
	case *UpsertStmt:
		if p.dialect != DialectLegacy {
			p.fail("UPDATE ... ELSE INSERT cannot be printed in CDW dialect")
			return
		}
		p.stmt(st.Update)
		p.w(" ELSE ")
		p.stmt(st.Insert)
	case *DeleteStmt:
		p.w("DELETE FROM ")
		p.table(st.Table)
		if st.Alias != "" {
			p.w(" ")
			p.ident(st.Alias)
		}
		if len(st.Using) > 0 {
			p.w(" USING ")
			p.fromList(st.Using)
		}
		if st.Where != nil {
			p.w(" WHERE ")
			p.expr(st.Where)
		}
	case *CreateTableStmt:
		p.w("CREATE TABLE ")
		if st.IfNotExists {
			p.w("IF NOT EXISTS ")
		}
		p.table(st.Table)
		p.w(" (")
		for i, c := range st.Columns {
			if i > 0 {
				p.w(", ")
			}
			p.ident(c.Name)
			p.w(" ")
			p.typeName(c.Type)
			if c.NotNull {
				p.w(" NOT NULL")
			}
			if c.Default != nil {
				p.w(" DEFAULT ")
				p.expr(c.Default)
			}
		}
		if len(st.PrimaryKey) > 0 {
			p.w(", PRIMARY KEY (")
			for i, c := range st.PrimaryKey {
				if i > 0 {
					p.w(", ")
				}
				p.ident(c)
			}
			p.w(")")
		}
		for _, u := range st.Unique {
			p.w(", UNIQUE (")
			for i, c := range u {
				if i > 0 {
					p.w(", ")
				}
				p.ident(c)
			}
			p.w(")")
		}
		p.w(")")
	case *DropTableStmt:
		p.w("DROP TABLE ")
		if st.IfExists {
			p.w("IF EXISTS ")
		}
		p.table(st.Table)
	case *TruncateStmt:
		p.w("TRUNCATE TABLE ")
		p.table(st.Table)
	case *CopyStmt:
		if p.dialect != DialectCDW {
			p.fail("COPY INTO is CDW-only")
			return
		}
		p.w("COPY INTO ")
		p.table(st.Table)
		p.w(" FROM ")
		p.strLit(st.From)
		if len(st.Files) > 0 {
			p.w(" FILES (")
			for i, f := range st.Files {
				if i > 0 {
					p.w(", ")
				}
				p.strLit(f)
			}
			p.w(")")
		}
		if len(st.Options) > 0 {
			p.w(" OPTIONS (")
			first := true
			for _, k := range sortedKeys(st.Options) {
				if !first {
					p.w(", ")
				}
				first = false
				p.w(k)
				p.w(" ")
				p.strLit(st.Options[k])
			}
			p.w(")")
		}
	default:
		p.fail("cannot print statement %T", s)
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func (p *printer) selectStmt(s *SelectStmt) {
	if s.Union != nil && s.Limit != nil && p.dialect == DialectLegacy {
		p.fail("legacy dialect cannot express a row limit over a UNION")
		return
	}
	p.selectCore(s)
	for u := s.Union; u != nil; u = u.Union {
		p.w(" UNION ALL ")
		p.selectCore(u)
	}
	if len(s.OrderBy) > 0 {
		p.w(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				p.w(", ")
			}
			p.expr(o.Expr)
			if o.Desc {
				p.w(" DESC")
			}
		}
	}
	if s.Limit != nil && p.dialect == DialectCDW {
		p.wf(" LIMIT %d", *s.Limit)
	}
}

// selectCore prints one select branch without its ORDER BY / LIMIT / union
// tail. The legacy dialect spells the limit as TOP inside the head, which
// only exists for non-union selects (checked by selectStmt).
func (p *printer) selectCore(s *SelectStmt) {
	p.w("SELECT ")
	if s.Distinct {
		p.w("DISTINCT ")
	}
	if s.Limit != nil && s.Union == nil && p.dialect == DialectLegacy {
		p.wf("TOP %d ", *s.Limit)
	}
	for i, it := range s.Items {
		if i > 0 {
			p.w(", ")
		}
		if it.Star {
			if it.StarTable != "" {
				p.ident(it.StarTable)
				p.w(".")
			}
			p.w("*")
			continue
		}
		p.expr(it.Expr)
		if it.Alias != "" {
			p.w(" AS ")
			p.ident(it.Alias)
		}
	}
	if len(s.From) > 0 {
		p.w(" FROM ")
		p.fromList(s.From)
	}
	if s.Where != nil {
		p.w(" WHERE ")
		p.expr(s.Where)
	}
	if len(s.GroupBy) > 0 {
		p.w(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				p.w(", ")
			}
			p.expr(e)
		}
	}
	if s.Having != nil {
		p.w(" HAVING ")
		p.expr(s.Having)
	}
}

func (p *printer) fromList(from []TableExpr) {
	for i, te := range from {
		if i > 0 {
			p.w(", ")
		}
		p.tableExpr(te)
	}
}

func (p *printer) tableExpr(te TableExpr) {
	switch t := te.(type) {
	case *TableRef:
		p.table(t.Table)
		if t.Alias != "" {
			p.w(" ")
			p.ident(t.Alias)
		}
	case *SubqueryTable:
		p.w("(")
		p.selectStmt(t.Select)
		p.w(") ")
		p.ident(t.Alias)
	case *Join:
		p.tableExpr(t.Left)
		p.w(" " + t.Type.String() + " ")
		p.tableExpr(t.Right)
		if t.On != nil {
			p.w(" ON ")
			p.expr(t.On)
		}
	default:
		p.fail("cannot print table expression %T", te)
	}
}

func (p *printer) strLit(s string) {
	p.w("'" + strings.ReplaceAll(s, "'", "''") + "'")
}

// binding powers for parenthesization decisions; higher binds tighter.
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case "OR":
			return 1
		case "AND":
			return 2
		case "=", "<>", "<", "<=", ">", ">=":
			return 4
		case "||":
			return 5
		case "+", "-":
			return 6
		case "*", "/", "%":
			return 7
		case "**":
			return 8
		}
		return 4
	case *UnaryExpr:
		if x.Op == "NOT" {
			return 3
		}
		return 9
	case *IsNullExpr, *InExpr, *BetweenExpr, *LikeExpr:
		return 4
	default:
		return 10
	}
}

func (p *printer) exprChild(child Expr, parentPrec int) {
	if exprPrec(child) < parentPrec {
		p.w("(")
		p.expr(child)
		p.w(")")
		return
	}
	p.expr(child)
}

func (p *printer) expr(e Expr) {
	switch x := e.(type) {
	case *Literal:
		switch x.Kind {
		case LitNull:
			p.w("NULL")
		case LitInt:
			p.w(strconv.FormatInt(x.Int, 10))
		case LitFloat:
			s := strconv.FormatFloat(x.Float, 'g', -1, 64)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			p.w(s)
		case LitString:
			p.strLit(x.Str)
		case LitBool:
			if x.Bool {
				p.w("TRUE")
			} else {
				p.w("FALSE")
			}
		case LitDate:
			p.w("DATE ")
			p.strLit(x.Str)
		}
	case *ColRef:
		if x.Qualifier != "" {
			p.ident(x.Qualifier)
			p.w(".")
		}
		p.ident(x.Name)
	case *Placeholder:
		if p.dialect == DialectCDW {
			p.fail("placeholder :%s cannot be printed in CDW dialect", x.Name)
			return
		}
		p.w(":" + x.Name)
	case *Star:
		p.w("*")
	case *UnaryExpr:
		prec := exprPrec(x)
		if x.Op == "NOT" {
			p.w("NOT ")
		} else {
			p.w(x.Op)
		}
		p.exprChild(x.X, prec)
	case *BinaryExpr:
		prec := exprPrec(x)
		p.exprChild(x.L, prec)
		p.w(" " + x.Op + " ")
		// left-associative: right child needs parens at equal precedence
		if exprPrec(x.R) <= prec && x.Op != "**" {
			if exprPrec(x.R) < prec || isSameNonAssoc(x, x.R) {
				p.w("(")
				p.expr(x.R)
				p.w(")")
				return
			}
		}
		p.exprChild(x.R, prec)
	case *FuncCall:
		p.w(x.Name)
		p.w("(")
		if x.Distinct {
			p.w("DISTINCT ")
		}
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a)
		}
		p.w(")")
	case *CastExpr:
		p.w("CAST(")
		p.expr(x.X)
		p.w(" AS ")
		p.typeName(x.Type)
		if x.Format != "" {
			if p.dialect == DialectCDW {
				p.fail("CAST ... FORMAT cannot be printed in CDW dialect")
				return
			}
			p.w(" FORMAT ")
			p.strLit(x.Format)
		}
		p.w(")")
	case *CaseExpr:
		p.w("CASE")
		if x.Operand != nil {
			p.w(" ")
			p.expr(x.Operand)
		}
		for _, wc := range x.Whens {
			p.w(" WHEN ")
			p.expr(wc.Cond)
			p.w(" THEN ")
			p.expr(wc.Then)
		}
		if x.Else != nil {
			p.w(" ELSE ")
			p.expr(x.Else)
		}
		p.w(" END")
	case *IsNullExpr:
		p.exprChild(x.X, 4)
		if x.Not {
			p.w(" IS NOT NULL")
		} else {
			p.w(" IS NULL")
		}
	case *InExpr:
		p.exprChild(x.X, 4)
		if x.Not {
			p.w(" NOT")
		}
		p.w(" IN (")
		if x.Sub != nil {
			p.selectStmt(x.Sub)
		} else {
			for i, v := range x.List {
				if i > 0 {
					p.w(", ")
				}
				p.expr(v)
			}
		}
		p.w(")")
	case *BetweenExpr:
		p.exprChild(x.X, 4)
		if x.Not {
			p.w(" NOT")
		}
		p.w(" BETWEEN ")
		p.exprChild(x.Lo, 5)
		p.w(" AND ")
		p.exprChild(x.Hi, 5)
	case *LikeExpr:
		p.exprChild(x.X, 4)
		if x.Not {
			p.w(" NOT")
		}
		p.w(" LIKE ")
		p.exprChild(x.Pattern, 5)
	case *ExistsExpr:
		if x.Not {
			p.w("NOT ")
		}
		p.w("EXISTS (")
		p.selectStmt(x.Sub)
		p.w(")")
	case *SubqueryExpr:
		p.w("(")
		p.selectStmt(x.Sub)
		p.w(")")
	default:
		p.fail("cannot print expression %T", e)
	}
}

// isSameNonAssoc reports whether r reuses a non-associative operator of the
// same precedence as parent, which would re-associate without parens
// (e.g. a - (b - c)).
func isSameNonAssoc(parent *BinaryExpr, r Expr) bool {
	rb, ok := r.(*BinaryExpr)
	if !ok {
		return false
	}
	switch parent.Op {
	case "-", "/", "%":
		return exprPrec(rb) == exprPrec(parent)
	case "+", "*", "||", "AND", "OR":
		return false
	default:
		return true
	}
}
