package sqlparse

import "testing"

// FuzzParse checks that arbitrary input never panics the parser and that
// anything that parses also prints and re-parses (print/parse closure).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SEL TOP 3 a FROM t WHERE x = :F",
		"insert into PROD.CUSTOMER values (trim(:A), cast(:B as DATE format 'YYYY-MM-DD'))",
		"UPDATE t SET v = 1 WHERE k = 2 ELSE INSERT INTO t VALUES (2, 1)",
		"SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY a LIMIT 3",
		"CREATE TABLE t (a VARCHAR(5) CHARACTER SET UNICODE, PRIMARY KEY (a))",
		"COPY INTO t FROM 'store://x/' OPTIONS (gzip 'true')",
		"SELECT CASE WHEN a THEN 'x' END, count(DISTINCT b) FROM t GROUP BY c HAVING count(*) > 1",
		"SELECT 'unterminated",
		"))))((((",
		"SELECT \xff\xfe FROM t",
	}
	for _, s := range seeds {
		f.Add(s, true)
	}
	f.Fuzz(func(t *testing.T, src string, legacy bool) {
		d := DialectCDW
		if legacy {
			d = DialectLegacy
		}
		stmt, err := Parse(src, d)
		if err != nil {
			return
		}
		printed, err := Print(stmt, d)
		if err != nil {
			// The one legal asymmetry: the legacy dialect parses a trailing
			// LIMIT-less TOP per branch but cannot express a limit over a
			// whole UNION.
			if sel, ok := stmt.(*SelectStmt); ok && sel.Union != nil && sel.Limit != nil && d == DialectLegacy {
				return
			}
			t.Fatalf("parsed but unprintable in %v: %q: %v", d, src, err)
		}
		if _, err := Parse(printed, d); err != nil {
			t.Fatalf("printed form does not re-parse: %q -> %q: %v", src, printed, err)
		}
	})
}

// FuzzLexer checks the lexer never panics and always terminates.
func FuzzLexer(f *testing.F) {
	f.Add("SELECT 'a' || \"b\" -- c\n/* d */ :E 1.5e3")
	f.Add(string([]byte{0, 255, 39, 34, 45, 45}))
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := LexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("token stream not EOF-terminated")
		}
	})
}
