// Package sqlparse implements a SQL lexer, parser, AST and printer shared by
// the legacy EDW dialect and the CDW dialect. The virtualizer parses incoming
// legacy SQL with DialectLegacy, rewrites the AST (internal/sqlxlate), and
// prints it with DialectCDW for execution on the cloud warehouse; the CDW
// engine parses that text back with DialectCDW.
package sqlparse

import (
	"fmt"
	"strings"
)

// Dialect selects dialect-specific syntax during parsing and printing.
type Dialect int

// Supported dialects.
const (
	// DialectLegacy is the Teradata-style EDW dialect: SEL abbreviation,
	// TOP n, named :placeholders, CAST (x AS DATE FORMAT 'YYYY-MM-DD'),
	// CHARACTER SET clauses in types.
	DialectLegacy Dialect = iota
	// DialectCDW is the cloud warehouse dialect: LIMIT n, TO_DATE/TO_CHAR
	// instead of FORMAT casts, no placeholders.
	DialectCDW
)

// String names the dialect.
func (d Dialect) String() string {
	if d == DialectCDW {
		return "cdw"
	}
	return "legacy"
}

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokQuotedIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
	TokPlaceholder // :NAME
)

// Token is one lexical element with its source position (1-based line/col).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; idents keep original case
	Line int
	Col  int
}

// keywords is the set of words lexed as TokKeyword (upper-cased).
var keywords = map[string]bool{
	"SELECT": true, "SEL": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "HAVING": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "TOP": true, "DISTINCT": true, "ALL": true, "AS": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "DROP": true,
	"TRUNCATE": true, "IF": true, "EXISTS": true, "NOT": true, "NULL": true,
	"PRIMARY": true, "KEY": true, "UNIQUE": true, "DEFAULT": true,
	"AND": true, "OR": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "CAST": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "JOIN": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "FULL": true, "OUTER": true, "CROSS": true, "ON": true,
	"USING": true, "COPY": true, "FORMAT": true, "DATE": true, "TIME": true,
	"TIMESTAMP": true, "INTERVAL": true, "CHARACTER": true, "VARYING": true,
	"TRUE": true, "FALSE": true, "MOD": true, "COUNT": true,
	"CHECKPOINT": true, "OPTIONS": true, "MERGE": true, "MATCHED": true,
	"ROW_NUMBER": true, "OVER": true, "PARTITION": true,
}

// Lexer tokenizes SQL text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("sqlparse: unterminated block comment at line %d", l.line)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			tok.Kind = TokKeyword
			tok.Text = upper
		} else {
			tok.Kind = TokIdent
			tok.Text = word
		}
		return tok, nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.pos
		seenDot := false
		seenExp := false
		for l.pos < len(l.src) {
			ch := l.peek()
			if isDigit(ch) {
				l.advance()
				continue
			}
			if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.advance()
				continue
			}
			if (ch == 'e' || ch == 'E') && !seenExp && l.pos > start {
				next := l.peek2()
				if isDigit(next) || next == '+' || next == '-' {
					seenExp = true
					l.advance() // e
					l.advance() // sign or digit
					continue
				}
			}
			break
		}
		tok.Kind = TokNumber
		tok.Text = l.src[start:l.pos]
		return tok, nil

	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sqlparse: unterminated string at line %d", tok.Line)
			}
			ch := l.advance()
			if ch == '\'' {
				if l.peek() == '\'' { // doubled quote escape
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		tok.Kind = TokString
		tok.Text = sb.String()
		return tok, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sqlparse: unterminated quoted identifier at line %d", tok.Line)
			}
			ch := l.advance()
			if ch == '"' {
				if l.peek() == '"' {
					l.advance()
					sb.WriteByte('"')
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		tok.Kind = TokQuotedIdent
		tok.Text = sb.String()
		return tok, nil

	case c == ':':
		if isIdentStart(l.peek2()) {
			l.advance() // :
			start := l.pos
			for l.pos < len(l.src) && isIdentCont(l.peek()) {
				l.advance()
			}
			tok.Kind = TokPlaceholder
			tok.Text = l.src[start:l.pos]
			return tok, nil
		}
		l.advance()
		tok.Kind = TokOp
		tok.Text = ":"
		return tok, nil

	default:
		// multi-char operators first
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "||", "<=", ">=", "<>", "!=", "**":
			l.advance()
			l.advance()
			tok.Kind = TokOp
			if two == "!=" {
				two = "<>"
			}
			tok.Text = two
			return tok, nil
		}
		switch c {
		case '(', ')', ',', ';', '.', '+', '-', '*', '/', '%', '=', '<', '>':
			l.advance()
			tok.Kind = TokOp
			tok.Text = string(c)
			return tok, nil
		}
		return Token{}, fmt.Errorf("sqlparse: unexpected character %q at line %d col %d", c, l.line, l.col)
	}
}

// LexAll tokenizes src completely (testing helper).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
