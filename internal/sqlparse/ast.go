package sqlparse

import "strings"

// Node is the interface implemented by all AST nodes.
type Node interface{ node() }

// Stmt is a SQL statement.
type Stmt interface {
	Node
	stmt()
}

// Expr is a SQL expression.
type Expr interface {
	Node
	expr()
}

// TableName is a possibly schema-qualified table name.
type TableName struct {
	Schema string // empty when unqualified
	Name   string
}

func (t TableName) node() {}

// String renders the name with a dot separator, without quoting.
func (t TableName) String() string {
	if t.Schema != "" {
		return t.Schema + "." + t.Name
	}
	return t.Name
}

// Equal compares names case-insensitively.
func (t TableName) Equal(o TableName) bool {
	return strings.EqualFold(t.Schema, o.Schema) && strings.EqualFold(t.Name, o.Name)
}

// TypeName is a SQL type as written, dialect-agnostic.
type TypeName struct {
	Name    string // upper-cased base name, e.g. "VARCHAR", "DECIMAL", "NVARCHAR"
	Args    []int  // length or precision/scale
	CharSet string // legacy: "LATIN"/"UNICODE" when CHARACTER SET was given
}

func (t TypeName) node() {}

// --- Statements ---

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr // empty for FROM-less selects
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64 // LIMIT n (CDW) or TOP n (legacy)
	// Union chains a UNION ALL branch evaluated after this select; ORDER BY
	// and LIMIT on the head apply to the combined result.
	Union *SelectStmt
}

func (*SelectStmt) node() {}
func (*SelectStmt) stmt() {}

// SelectItem is one projection: an expression with an optional alias, or a
// star (optionally qualified: t.*).
type SelectItem struct {
	Star      bool
	StarTable string // qualifier for t.*
	Expr      Expr
	Alias     string
}

func (SelectItem) node() {}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (OrderItem) node() {}

// TableExpr is a FROM-clause item.
type TableExpr interface {
	Node
	tableExpr()
}

// TableRef is a base-table reference with an optional alias.
type TableRef struct {
	Table TableName
	Alias string
}

func (*TableRef) node()      {}
func (*TableRef) tableExpr() {}

// SubqueryTable is a derived table: (SELECT ...) alias.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryTable) node()      {}
func (*SubqueryTable) tableExpr() {}

// JoinType distinguishes join flavors.
type JoinType int

// Join types.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinCross
)

// String names the join type in SQL.
func (j JoinType) String() string {
	switch j {
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// Join combines two table expressions.
type Join struct {
	Type  JoinType
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for cross joins
}

func (*Join) node()      {}
func (*Join) tableExpr() {}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...)[, ...] or INSERT ... SELECT.
type InsertStmt struct {
	Table   TableName
	Columns []string
	Rows    [][]Expr    // nil when Select is set
	Select  *SelectStmt // nil when Rows is set
}

func (*InsertStmt) node() {}
func (*InsertStmt) stmt() {}

// Assignment is one SET column = expr.
type Assignment struct {
	Column string
	Value  Expr
}

func (Assignment) node() {}

// UpdateStmt is UPDATE t [alias] [FROM src] SET ... WHERE ...
// The legacy dialect also accepts UPDATE t FROM s SET ...; both normalize to
// this shape.
type UpdateStmt struct {
	Table TableName
	Alias string
	Set   []Assignment
	From  []TableExpr // additional source tables (CDW-style UPDATE ... FROM)
	Where Expr
}

func (*UpdateStmt) node() {}
func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM t [alias] [USING src] WHERE ...
type DeleteStmt struct {
	Table TableName
	Alias string
	Using []TableExpr
	Where Expr
}

func (*DeleteStmt) node() {}
func (*DeleteStmt) stmt() {}

// UpsertStmt is the legacy atomic upsert: UPDATE ... ELSE INSERT ...
// (per input row, update the matching target row, else insert a new one).
// Legacy-dialect only; the cross compiler rewrites it into a set-oriented
// UPDATE plus a NOT EXISTS-guarded INSERT.
type UpsertStmt struct {
	Update *UpdateStmt
	Insert *InsertStmt
}

func (*UpsertStmt) node() {}
func (*UpsertStmt) stmt() {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    TypeName
	NotNull bool
	Default Expr
}

func (ColumnDef) node() {}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table       TableName
	IfNotExists bool
	Columns     []ColumnDef
	PrimaryKey  []string   // declared primary key (may be unenforced by the engine)
	Unique      [][]string // declared unique constraints
}

func (*CreateTableStmt) node() {}
func (*CreateTableStmt) stmt() {}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table    TableName
	IfExists bool
}

func (*DropTableStmt) node() {}
func (*DropTableStmt) stmt() {}

// TruncateStmt is TRUNCATE TABLE.
type TruncateStmt struct {
	Table TableName
}

func (*TruncateStmt) node() {}
func (*TruncateStmt) stmt() {}

// CopyStmt is the CDW bulk-ingest statement:
//
//	COPY INTO t FROM 'store://prefix/' FILES ('a.csv', 'b.csv.gz') OPTIONS (format 'csv', gzip 'true')
//
// Without a FILES manifest the engine ingests every object under the From
// prefix; with one it ingests exactly the named objects (resolved relative
// to the prefix), in manifest order — the incremental multi-file COPY the
// virtualizer's copy scheduler issues while acquisition is still running.
type CopyStmt struct {
	Table   TableName
	From    string
	Files   []string
	Options map[string]string
}

func (*CopyStmt) node() {}
func (*CopyStmt) stmt() {}

// --- Expressions ---

// LiteralKind classifies literal values.
type LiteralKind int

// Literal kinds.
const (
	LitNull LiteralKind = iota
	LitInt
	LitFloat
	LitString
	LitBool
	LitDate // DATE 'YYYY-MM-DD'
)

// Literal is a constant.
type Literal struct {
	Kind  LiteralKind
	Int   int64
	Float float64
	Str   string // string and date literals
	Bool  bool
}

func (*Literal) node() {}
func (*Literal) expr() {}

// ColRef is a possibly qualified column reference.
type ColRef struct {
	Qualifier string // table or alias, empty if none
	Name      string
}

func (*ColRef) node() {}
func (*ColRef) expr() {}

// Placeholder is a legacy named parameter :NAME bound to an input field.
type Placeholder struct {
	Name string
}

func (*Placeholder) node() {}
func (*Placeholder) expr() {}

// Star is the * inside COUNT(*).
type Star struct{}

func (*Star) node() {}
func (*Star) expr() {}

// UnaryExpr is -x, +x or NOT x.
type UnaryExpr struct {
	Op string // "-", "+", "NOT"
	X  Expr
}

func (*UnaryExpr) node() {}
func (*UnaryExpr) expr() {}

// BinaryExpr is a binary operation. Op is one of
// + - * / % ** || = <> < <= > >= AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) node() {}
func (*BinaryExpr) expr() {}

// FuncCall is a function invocation.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Distinct bool // COUNT(DISTINCT x)
}

func (*FuncCall) node() {}
func (*FuncCall) expr() {}

// CastExpr is CAST(x AS type [FORMAT 'fmt']). The FORMAT clause is legacy
// syntax; the CDW printer refuses it (sqlxlate rewrites it first).
type CastExpr struct {
	X      Expr
	Type   TypeName
	Format string // legacy FORMAT pattern, empty if absent
}

func (*CastExpr) node() {}
func (*CastExpr) expr() {}

// WhenClause is one WHEN ... THEN ... arm.
type WhenClause struct {
	Cond Expr
	Then Expr
}

func (WhenClause) node() {}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

func (*CaseExpr) node() {}
func (*CaseExpr) expr() {}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) node() {}
func (*IsNullExpr) expr() {}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
	Sub  *SelectStmt
}

func (*InExpr) node() {}
func (*InExpr) expr() {}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) node() {}
func (*BetweenExpr) expr() {}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

func (*LikeExpr) node() {}
func (*LikeExpr) expr() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

func (*ExistsExpr) node() {}
func (*ExistsExpr) expr() {}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Sub *SelectStmt
}

func (*SubqueryExpr) node() {}
func (*SubqueryExpr) expr() {}

// WalkExprs calls fn for every expression in the statement tree, including
// nested subqueries, in unspecified order. It is used by sqlxlate for
// analysis passes.
func WalkExprs(s Stmt, fn func(Expr)) {
	switch st := s.(type) {
	case *SelectStmt:
		walkSelect(st, fn)
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
		if st.Select != nil {
			walkSelect(st.Select, fn)
		}
	case *UpdateStmt:
		for _, a := range st.Set {
			walkExpr(a.Value, fn)
		}
		for _, te := range st.From {
			walkTableExpr(te, fn)
		}
		walkExpr(st.Where, fn)
	case *DeleteStmt:
		for _, te := range st.Using {
			walkTableExpr(te, fn)
		}
		walkExpr(st.Where, fn)
	case *UpsertStmt:
		WalkExprs(st.Update, fn)
		WalkExprs(st.Insert, fn)
	case *CreateTableStmt:
		for _, c := range st.Columns {
			walkExpr(c.Default, fn)
		}
	}
}

func walkSelect(s *SelectStmt, fn func(Expr)) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		walkExpr(it.Expr, fn)
	}
	for _, te := range s.From {
		walkTableExpr(te, fn)
	}
	walkExpr(s.Where, fn)
	for _, e := range s.GroupBy {
		walkExpr(e, fn)
	}
	walkExpr(s.Having, fn)
	for _, o := range s.OrderBy {
		walkExpr(o.Expr, fn)
	}
	walkSelect(s.Union, fn)
}

func walkTableExpr(te TableExpr, fn func(Expr)) {
	switch t := te.(type) {
	case *SubqueryTable:
		walkSelect(t.Select, fn)
	case *Join:
		walkTableExpr(t.Left, fn)
		walkTableExpr(t.Right, fn)
		walkExpr(t.On, fn)
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *CastExpr:
		walkExpr(x.X, fn)
	case *CaseExpr:
		walkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	case *IsNullExpr:
		walkExpr(x.X, fn)
	case *InExpr:
		walkExpr(x.X, fn)
		for _, v := range x.List {
			walkExpr(v, fn)
		}
		walkSelect(x.Sub, fn)
	case *BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *LikeExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Pattern, fn)
	case *ExistsExpr:
		walkSelect(x.Sub, fn)
	case *SubqueryExpr:
		walkSelect(x.Sub, fn)
	}
}
