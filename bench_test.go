// Benchmarks regenerating the paper's evaluation (§9), one per figure.
// Each sub-benchmark is one x-axis point of the corresponding figure; custom
// metrics expose the phase split the paper plots. cmd/benchfig prints the
// full, formatted series.
package etlvirt_test

import (
	"fmt"
	"testing"
	"time"

	"etlvirt/internal/bench"
	"etlvirt/internal/cdw"
	"etlvirt/internal/convert"
	"etlvirt/internal/core"
)

// benchScale keeps one benchmark iteration fast; benchfig runs the bigger
// sweeps.
const benchScale = 150

func runImport(b *testing.B, cfg bench.RunConfig) bench.PhaseTimes {
	b.Helper()
	p, err := bench.RunImport(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig7DatasetSize is Figure 7: job time vs dataset size, phase
// split into acquisition/application.
func BenchmarkFig7DatasetSize(b *testing.B) {
	for _, m := range []int{25, 50, 75, 100} {
		b.Run(fmt.Sprintf("Mrows=%d", m), func(b *testing.B) {
			var last bench.PhaseTimes
			for i := 0; i < b.N; i++ {
				last = runImport(b, bench.RunConfig{
					Workload: bench.Workload{Rows: m * benchScale / 25, RowBytes: 500, Seed: int64(m)},
					Sessions: 2, ChunkRecords: 250,
				})
			}
			b.ReportMetric(float64(last.Acquisition.Microseconds()), "acq-µs")
			b.ReportMetric(float64(last.Application.Microseconds()), "app-µs")
		})
	}
}

// BenchmarkFig8RowWidth is Figure 8: constant volume, varying row width.
func BenchmarkFig8RowWidth(b *testing.B) {
	for _, width := range []int{250, 500, 750, 1000} {
		rows := 4 * benchScale * 250 / width
		b.Run(fmt.Sprintf("rowBytes=%d", width), func(b *testing.B) {
			var last bench.PhaseTimes
			for i := 0; i < b.N; i++ {
				last = runImport(b, bench.RunConfig{
					Workload: bench.Workload{Rows: rows, RowBytes: width, Seed: int64(width)},
					Sessions: 2, ChunkRecords: 250,
				})
			}
			b.SetBytes(last.Bytes)
			b.ReportMetric(float64(last.Acquisition.Microseconds()), "acq-µs")
		})
	}
}

// BenchmarkFig9Cores is Figure 9: acquisition scalability with converter
// parallelism (CPU-core stand-in; see bench.Fig9 for the modelling note).
func BenchmarkFig9Cores(b *testing.B) {
	w := bench.Workload{Rows: 6 * benchScale, RowBytes: 500, Seed: 9}
	for _, cores := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			var last bench.PhaseTimes
			for i := 0; i < b.N; i++ {
				last = runImport(b, bench.RunConfig{
					Workload: w,
					Node: core.Config{
						Converters:  cores,
						FileWriters: 2,
						Credits:     64,
						ConvertOpts: convert.Options{SimulatedByteCost: 150 * time.Nanosecond},
					},
					Sessions:     8,
					ChunkRecords: 50,
				})
			}
			b.ReportMetric(float64(last.Acquisition.Microseconds()), "acq-µs")
		})
	}
}

// BenchmarkFig10Credits is Figure 10: acquisition rate vs CreditManager
// pool size on a 50-column table.
func BenchmarkFig10Credits(b *testing.B) {
	w := bench.Workload{Rows: 4 * benchScale, RowBytes: 1000, Cols: 48, Seed: 10}
	for _, credits := range []int{2, 32, 1024, 100000} {
		b.Run(fmt.Sprintf("credits=%d", credits), func(b *testing.B) {
			var last bench.PhaseTimes
			for i := 0; i < b.N; i++ {
				last = runImport(b, bench.RunConfig{
					Workload:     w,
					Node:         core.Config{Credits: credits, Converters: 4, FileWriters: 2},
					Sessions:     4,
					ChunkRecords: 100,
				})
			}
			b.ReportMetric(last.AcquireRateMBs(), "MB/s")
		})
	}
}

// BenchmarkFig11ErrorHandling is Figure 11: adaptive error handling vs the
// singleton-insert baseline across error rates.
func BenchmarkFig11ErrorHandling(b *testing.B) {
	stmtCost := cdw.Options{StmtOverhead: 200 * time.Microsecond}
	for _, rate := range []float64{0, 0.01, 0.10} {
		w := bench.Workload{Rows: 2 * benchScale, RowBytes: 250, ErrRate: rate, NoPK: true,
			Seed: int64(rate * 1000)}
		b.Run(fmt.Sprintf("adaptive/errs=%.0f%%", rate*100), func(b *testing.B) {
			var last bench.PhaseTimes
			for i := 0; i < b.N; i++ {
				last = runImport(b, bench.RunConfig{
					Workload:     w,
					CDW:          stmtCost,
					ChunkRecords: 250,
					ScriptExtra:  fmt.Sprintf(" maxerrors %d", 2*benchScale/20),
				})
			}
			b.ReportMetric(float64(last.ApplyStmts), "dml-stmts")
		})
		b.Run(fmt.Sprintf("baseline/errs=%.0f%%", rate*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunBaselineSingleton(bench.RunConfig{Workload: w, CDW: stmtCost}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndImport is the headline micro: one complete virtualized
// import (logon through LoadDone) per iteration.
func BenchmarkEndToEndImport(b *testing.B) {
	w := bench.Workload{Rows: 500, RowBytes: 500, Seed: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunImport(bench.RunConfig{Workload: w, Sessions: 2, ChunkRecords: 100}); err != nil {
			b.Fatal(err)
		}
	}
}
