// Package etlvirt is the public facade of the ETL-pipeline virtualizer, a
// from-scratch reproduction of "Adaptive Real-time Virtualization of Legacy
// ETL Pipelines in Cloud Data Warehouses" (EDBT 2023).
//
// The system lets unmodified legacy ETL clients — script-driven bulk
// load/export utilities speaking a proprietary wire protocol — run against a
// modern cloud data warehouse. A virtualizer node impersonates the legacy
// server: it cross-compiles protocol messages and SQL, converts binary data
// formats on the fly, stages data through a cloud object store, and emulates
// legacy per-tuple error handling on top of the CDW's set-oriented engine.
//
// Three deployment shapes are supported:
//
//   - StartStack assembles everything in-process (object store, CDW engine,
//     CDW server, virtualizer node) — the quickest way to experiment and the
//     harness used by the examples and benchmarks.
//   - The cmd/ binaries (cdwd, edwd, etlvirtd, etlrun) run each component as
//     its own process connected over TCP.
//   - Individual components can be embedded via this package's constructors.
//
// A minimal end-to-end session:
//
//	stack, _ := etlvirt.StartStack(etlvirt.StackConfig{})
//	defer stack.Close()
//	stack.ExecCDW(`CREATE TABLE prod.customer (...)`)
//	res, _ := etlvirt.RunScriptSource(scriptText, etlvirt.RunOptions{Addr: stack.NodeAddr})
package etlvirt

import (
	"fmt"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/edw"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/sqlxlate"
)

// NodeConfig tunes a virtualizer node. See internal/core.Config for the
// field documentation.
type NodeConfig = core.Config

// JobReport is the per-job phase/counter report of a virtualizer node.
type JobReport = core.JobReport

// RunOptions tunes legacy-client script execution.
type RunOptions = etlclient.Options

// RunResult is the outcome of a script run.
type RunResult = etlclient.Result

// Script is a parsed legacy ETL job script.
type Script = etlscript.Script

// AnalysisReport is the result of the workload pre-flight analysis.
type AnalysisReport = sqlxlate.Report

// StackConfig assembles an in-process environment.
type StackConfig struct {
	// Node tunes the virtualizer. CDWAddr is filled in automatically.
	Node NodeConfig
	// CDW tunes the warehouse engine.
	CDW cdw.Options
	// UplinkBytesPerSec simulates a bandwidth-limited link between the node
	// and the object store. Zero means unlimited.
	UplinkBytesPerSec int64
}

// Stack is a complete in-process environment: shared object store, CDW
// engine behind a TCP server, and a virtualizer node.
type Stack struct {
	Store    *cloudstore.MemStore
	Engine   *cdw.Engine
	Node     *core.Node
	NodeAddr string
	CDWAddr  string

	cdwServer *cdwnet.Server
}

// StartStack builds and starts a Stack on loopback TCP ports.
func StartStack(cfg StackConfig) (*Stack, error) {
	store := cloudstore.NewMemStore()
	eng := cdw.NewEngine(store, cfg.CDW)
	srv := cdwnet.NewServer(eng)
	cdwAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("etlvirt: starting CDW server: %w", err)
	}
	nodeCfg := cfg.Node
	nodeCfg.CDWAddr = cdwAddr

	var nodeStore cloudstore.Store = store
	if cfg.UplinkBytesPerSec > 0 {
		nodeStore = &cloudstore.ThrottledStore{
			Store: store,
			Link:  &cloudstore.Link{BytesPerSec: cfg.UplinkBytesPerSec},
		}
	}
	node := core.NewNode(nodeCfg, nodeStore)
	nodeAddr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("etlvirt: starting node: %w", err)
	}
	return &Stack{
		Store:     store,
		Engine:    eng,
		Node:      node,
		NodeAddr:  nodeAddr,
		CDWAddr:   cdwAddr,
		cdwServer: srv,
	}, nil
}

// Close shuts the stack down.
func (s *Stack) Close() {
	if s.Node != nil {
		s.Node.Close()
	}
	if s.cdwServer != nil {
		s.cdwServer.Close()
	}
}

// ExecCDW runs a statement directly on the warehouse engine (DDL seeding,
// result inspection). It bypasses the virtualizer on purpose — use a legacy
// client connection for the virtualized path.
func (s *Stack) ExecCDW(sql string) (*cdw.Result, error) {
	return s.Engine.ExecSQL(sql)
}

// Reports returns the node's completed job reports.
func (s *Stack) Reports() []JobReport { return s.Node.Reports() }

// ParseScript parses legacy ETL script source.
func ParseScript(src string) (*Script, error) { return etlscript.Parse(src) }

// RunScript parses and executes a script against the server in
// opts.Addr (or the script's .logon host).
func RunScript(script *Script, opts RunOptions) (*RunResult, error) {
	return etlclient.Run(script, opts)
}

// RunScriptSource parses and executes script source text.
func RunScriptSource(src string, opts RunOptions) (*RunResult, error) {
	s, err := etlscript.Parse(src)
	if err != nil {
		return nil, err
	}
	return etlclient.Run(s, opts)
}

// Analyze performs the qInsight-style pre-flight scan of a legacy SQL
// workload, reporting which constructs translate automatically and which
// need manual rewrites (§8 of the paper).
func Analyze(legacySQL string) *AnalysisReport { return sqlxlate.Analyze(legacySQL) }

// NewLegacyEDW starts a reference legacy warehouse on addr ("127.0.0.1:0"
// for an ephemeral port) and returns it with its bound address. It is the
// correctness oracle: the same script run against it and against a Stack
// must produce identical tables.
func NewLegacyEDW(addr string) (*edw.Server, string, error) {
	srv := edw.NewServer()
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}
