package etlvirt_test

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/edw"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/faultinject"
)

// TestChaosDifferentialOracle is the differential chaos test: one unmodified
// legacy ETL script runs natively against the reference EDW (the semantic
// ground truth) and through the virtualizer against a CDW whose object store
// and network transport are riddled with injected faults. The virtualized
// run must retry its way to the exact same target table and error-table rows
// the legacy engine produces — resilience must be invisible at the data
// level.
//
// The fault seed comes from ETLVIRT_FAULT_SEED (the CI chaos matrix), so a
// failure reproduces locally with the same seed.
func TestChaosDifferentialOracle(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("ETLVIRT_FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("ETLVIRT_FAULT_SEED=%q: %v", s, err)
		}
		seed = v
	}

	const script = `
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
	format vartext '|' layout CustLayout
	apply InsApply;
.end load;
`
	const ddl = `CREATE TABLE PROD.CUSTOMER (
	CUST_ID VARCHAR(5) NOT NULL,
	CUST_NAME VARCHAR(50),
	JOIN_DATE DATE,
	PRIMARY KEY (CUST_ID))`

	// mixed input: clean rows, conversion errors, duplicate keys
	var sb strings.Builder
	for i := 1; i <= 200; i++ {
		date := fmt.Sprintf("2022-%02d-%02d", 1+i%12, 1+i%28)
		switch {
		case i%23 == 5:
			date = "not-a-date"
		case i == 190:
			// duplicate of row 11's key
			fmt.Fprintf(&sb, "11|Dup %d|%s\n", i, date)
			continue
		}
		fmt.Fprintf(&sb, "%d|Name %d|%s\n", i, i, date)
	}
	input := sb.String()

	runOnce := func(addr string) *etlclient.Result {
		s, err := etlscript.Parse(script)
		if err != nil {
			t.Fatal(err)
		}
		res, err := etlclient.Run(s, etlclient.Options{
			Addr:         addr,
			ChunkRecords: 16,
			ReadFile:     func(string) ([]byte, error) { return []byte(input), nil },
		})
		if err != nil {
			t.Fatalf("script run failed: %v", err)
		}
		return res
	}

	// reference run on the legacy EDW
	edwSrv := edw.NewServer()
	edwAddr, err := edwSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { edwSrv.Close() })
	if _, err := edwSrv.Engine().ExecSQL(ddl); err != nil {
		t.Fatal(err)
	}
	edwRes := runOnce(edwAddr)

	// virtualized run with fault injection on both infrastructure seams:
	// the virtualizer's store traffic and its CDW transport
	inj := faultinject.New(seed)
	inj.SetRule(faultinject.OpStorePut,
		faultinject.Rule{Rate: 0.15, Every: 5, Class: faultinject.ClassTimeout})
	inj.SetRule("cdw.query",
		faultinject.Rule{Rate: 0.02, Every: 30, Class: faultinject.ClassReset})

	store := cloudstore.NewMemStore()
	cdwEng := cdw.NewEngine(store, cdw.Options{})
	cdwSrv := cdwnet.NewServer(cdwEng)
	cdwAddr, err := cdwSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cdwSrv.Close() })
	node := core.NewNode(core.Config{
		CDWAddr:           cdwAddr,
		UploadParallelism: 1, // deterministic store.put order for the seed
		FileSizeThreshold: 2 << 10,
		FaultInjector:     inj,
		RetryMaxAttempts:  8,
		RetryBaseDelay:    time.Millisecond,
		RetryMaxDelay:     5 * time.Millisecond,
	}, store)
	nodeAddr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	if _, err := cdwEng.ExecSQL(ddl); err != nil {
		t.Fatal(err)
	}
	virtRes := runOnce(nodeAddr)

	if inj.Injected() == 0 {
		t.Fatal("no faults were injected; the chaos run tested nothing")
	}

	// job-level outcomes must match
	l, v := edwRes.Imports[0], virtRes.Imports[0]
	if l.Inserted != v.Inserted || l.ErrorsET != v.ErrorsET || l.ErrorsUV != v.ErrorsUV {
		t.Errorf("outcomes differ (seed %d):\n edw:  %+v\n virt: %+v", seed, l, v)
	}

	// table state must be byte-identical
	state := func(eng *cdw.Engine, sql string) []string {
		res, err := eng.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		var out []string
		for _, row := range res.Rows {
			var parts []string
			for _, d := range row {
				parts = append(parts, d.Render())
			}
			out = append(out, strings.Join(parts, "|"))
		}
		sort.Strings(out)
		return out
	}
	for _, q := range []string{
		"SELECT CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER",
		"SELECT SEQNO, SEQNO_END, ERRCODE FROM PROD.CUSTOMER_ET",
		"SELECT SEQNO, SEQNO_END, ERRCODE FROM PROD.CUSTOMER_UV",
	} {
		got, want := state(cdwEng, q), state(edwSrv.Engine(), q)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("diverged under seed %d for %q:\n edw:  %v\n virt: %v", seed, q, want, got)
		}
	}
}
