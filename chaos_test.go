package etlvirt_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/ltype"
	"etlvirt/internal/scrub"
	"etlvirt/internal/stream"
	"etlvirt/internal/testhost"
	"etlvirt/internal/wire"
)

// TestChaosDifferentialOracle is the differential chaos test: one unmodified
// legacy ETL script runs natively against the reference EDW (the semantic
// ground truth) and through the virtualizer against a CDW whose object store
// and network transport are riddled with injected faults. The virtualized
// run must retry its way to the exact same target table and error-table rows
// the legacy engine produces — resilience must be invisible at the data
// level. The comparison is the scrub subsystem's differential report, so the
// chaos oracle and the post-load scrub can never drift apart.
//
// The fault seed comes from ETLVIRT_FAULT_SEED (the CI chaos matrix), so a
// failure reproduces locally with the same seed.
func TestChaosDifferentialOracle(t *testing.T) {
	seed := testhost.FaultSeed(t, 1)

	const script = `
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
	format vartext '|' layout CustLayout
	apply InsApply;
.end load;
`
	const ddl = `CREATE TABLE PROD.CUSTOMER (
	CUST_ID VARCHAR(5) NOT NULL,
	CUST_NAME VARCHAR(50),
	JOIN_DATE DATE,
	PRIMARY KEY (CUST_ID))`

	// mixed input: clean rows, conversion errors, duplicate keys
	var sb strings.Builder
	for i := 1; i <= 200; i++ {
		date := fmt.Sprintf("2022-%02d-%02d", 1+i%12, 1+i%28)
		switch {
		case i%23 == 5:
			date = "not-a-date"
		case i == 190:
			// duplicate of row 11's key
			fmt.Fprintf(&sb, "11|Dup %d|%s\n", i, date)
			continue
		}
		fmt.Fprintf(&sb, "%d|Name %d|%s\n", i, i, date)
	}
	files := map[string][]byte{"input.txt": []byte(sb.String())}

	p := testhost.StartPair(t, testhost.Options{Seed: seed, DDL: []string{ddl}})
	edwRes, _ := p.Run(t, p.EDWAddr, script, files)
	virtRes, _ := p.Run(t, p.NodeAddr, script, files)

	if p.Injector.Injected() == 0 {
		t.Fatal("no faults were injected; the chaos run tested nothing")
	}

	// job-level outcomes must match
	l, v := edwRes.Imports[0], virtRes.Imports[0]
	if l.Inserted != v.Inserted || l.ErrorsET != v.ErrorsET || l.ErrorsUV != v.ErrorsUV {
		t.Errorf("outcomes differ (seed %d):\n edw:  %+v\n virt: %+v", seed, l, v)
	}

	// Data-level comparison: the differential scrub must come back clean.
	rep := p.Scrub(t, scrub.Options{Tables: []scrub.Table{{
		Name:      "PROD.CUSTOMER",
		ErrTables: []string{"PROD.CUSTOMER_ET", "PROD.CUSTOMER_UV"},
	}}})
	if !rep.OK {
		t.Errorf("scrub diverged under seed %d:\n%s", seed, rep.Diff())
	}
}

// TestChaosCDCResume is the CDC differential chaos test: an interleaved
// insert/update/delete delta stream runs through the virtualizer's streaming
// path while the object store and CDW transport inject faults, and the
// client is killed twice mid-stream and resumes from the durable watermark —
// deliberately replaying everything from delta 1 each time, so the server's
// replay drop and error-table idempotence are both exercised. The oracle is
// tuple-at-a-time application on a fault-free warehouse: the streamed target
// table and error table must match it byte for byte.
//
// The fault seed comes from ETLVIRT_FAULT_SEED (the CI chaos matrix).
func TestChaosCDCResume(t *testing.T) {
	seed := testhost.FaultSeed(t, 1)

	const ddl = `CREATE TABLE PROD.CUSTOMER (
	CUST_ID VARCHAR(5) NOT NULL,
	CUST_NAME VARCHAR(50),
	JOIN_DATE DATE,
	PRIMARY KEY (CUST_ID))`
	const applySQL = `insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') )`

	// Deterministic interleaved delta stream over a 40-key space: first
	// image of a key inserts, later images update, every 13th delta deletes,
	// and every 23rd carries a date that fails the apply-time cast.
	type cdcDelta struct {
		op       stream.Op
		id, name string
		date     string
	}
	const total = 160
	deltas := make([]cdcDelta, 0, total)
	live := map[string]bool{}
	for i := 1; i <= total; i++ {
		id := fmt.Sprintf("%d", 1+(i*7)%40)
		date := fmt.Sprintf("2023-%02d-%02d", 1+i%12, 1+i%28)
		if i%23 == 11 {
			date = "bad-date"
		}
		if i%13 == 0 && live[id] {
			deltas = append(deltas, cdcDelta{op: stream.OpDelete, id: id})
			live[id] = false
			continue
		}
		op := stream.OpUpdate
		if !live[id] {
			op = stream.OpInsert
		}
		deltas = append(deltas, cdcDelta{op: op, id: id, name: fmt.Sprintf("Name %d", i), date: date})
		if date != "bad-date" {
			live[id] = true
		}
	}

	// Reference: apply each delta tuple-at-a-time on a fault-free engine,
	// recording apply errors exactly as the stream's error table does.
	refEng := cdw.NewEngine(cloudstore.NewMemStore(), cdw.Options{})
	if _, err := refEng.ExecSQL(ddl); err != nil {
		t.Fatal(err)
	}
	var refET []string
	for i, d := range deltas {
		seq := i + 1
		var err error
		switch d.op {
		case stream.OpDelete:
			_, err = refEng.ExecSQL(fmt.Sprintf(
				"DELETE FROM PROD.CUSTOMER WHERE CUST_ID = '%s'", d.id))
		default:
			var res *cdw.Result
			res, err = refEng.ExecSQL(fmt.Sprintf(
				"SELECT count(*) FROM PROD.CUSTOMER WHERE CUST_ID = '%s'", d.id))
			if err != nil {
				t.Fatalf("ref probe seq %d: %v", seq, err)
			}
			if res.Rows[0][0].I > 0 {
				_, err = refEng.ExecSQL(fmt.Sprintf(
					"UPDATE PROD.CUSTOMER SET CUST_NAME = '%s', JOIN_DATE = to_date('%s', 'YYYY-MM-DD') WHERE CUST_ID = '%s'",
					d.name, d.date, d.id))
			} else {
				_, err = refEng.ExecSQL(fmt.Sprintf(
					"INSERT INTO PROD.CUSTOMER VALUES ('%s', '%s', to_date('%s', 'YYYY-MM-DD'))",
					d.id, d.name, d.date))
			}
		}
		if err != nil {
			var ce *cdw.Error
			if !errors.As(err, &ce) {
				t.Fatalf("ref apply seq %d: %v", seq, err)
			}
			refET = append(refET, fmt.Sprintf("%d|%d|%d", seq, seq, ce.Code))
		}
	}

	// Virtualized stack with faults on both infrastructure seams.
	p := testhost.StartPair(t, testhost.Options{Seed: seed, DDL: []string{ddl}})

	layout := &ltype.Layout{Name: "CustLayout", Fields: []ltype.Field{
		{Name: "CUST_ID", Type: ltype.VarChar(5)},
		{Name: "CUST_NAME", Type: ltype.VarChar(50)},
		{Name: "JOIN_DATE", Type: ltype.VarChar(10)},
	}}
	dial := func() *wire.Conn {
		c, err := wire.Dial(p.NodeAddr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(0, &wire.Logon{User: "u", Password: "p"}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Expect(wire.KindLogonOK); err != nil {
			t.Fatal(err)
		}
		return c
	}
	begin := func(c *wire.Conn) *wire.StreamOK {
		if err := c.Send(0, &wire.BeginStream{
			Name: "chaos_cdc", Table: "PROD.CUSTOMER", ErrTableET: "PROD.CUSTOMER_ET",
			Layout: layout, Format: wire.FormatVartext, Delim: '|', SQL: applySQL,
		}); err != nil {
			t.Fatal(err)
		}
		m, err := c.Expect(wire.KindStreamOK)
		if err != nil {
			t.Fatalf("begin stream: %v", err)
		}
		return m.(*wire.StreamOK)
	}
	// sendRange frames deltas[lo..hi] (1-based, inclusive) in frames of 16
	// and returns the last ack.
	sendRange := func(c *wire.Conn, id uint64, lo, hi int) *wire.DeltaAck {
		var last *wire.DeltaAck
		for f := lo; f <= hi; f += 16 {
			end := f + 15
			if end > hi {
				end = hi
			}
			var payload []byte
			for s := f; s <= end; s++ {
				d := deltas[s-1]
				rec := fmt.Sprintf("%s|%s|%s\n", d.id, d.name, d.date)
				payload = stream.AppendDelta(payload, d.op, []byte(rec))
			}
			if err := c.Send(0, &wire.DeltaFrame{
				StreamID: id, FirstSeq: uint64(f), Count: uint32(end - f + 1), Payload: payload,
			}); err != nil {
				t.Fatal(err)
			}
			m, err := c.Expect(wire.KindDeltaAck)
			if err != nil {
				t.Fatalf("frame at seq %d: %v", f, err)
			}
			last = m.(*wire.DeltaAck)
		}
		return last
	}
	waitIdle := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			busy := false
			for _, j := range p.Node.ActiveJobs() {
				if j.Kind == "stream" {
					busy = true
				}
			}
			if !busy {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("stream jobs still active after kill")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: half the stream, then kill the connection mid-batch.
	c := dial()
	ok := begin(c)
	if ok.ResumeSeq != 0 {
		t.Fatalf("fresh stream resumes at %d", ok.ResumeSeq)
	}
	sendRange(c, ok.StreamID, 1, total/2)
	c.Close()
	waitIdle()

	// Phase 2: resume, full replay from delta 1 — the ack must show the
	// durable watermark, not re-application — then kill again.
	c = dial()
	ok = begin(c)
	w1 := ok.ResumeSeq
	if w1 == 0 || w1 > uint64(total/2) {
		t.Fatalf("phase-2 resume watermark %d, want in (0, %d]", w1, total/2)
	}
	ack := sendRange(c, ok.StreamID, 1, 3*total/4)
	if ack.CommittedSeq < w1 {
		t.Fatalf("replay regressed the watermark: %d < %d", ack.CommittedSeq, w1)
	}
	c.Close()
	waitIdle()

	// Phase 3: resume again, replay everything, finish cleanly.
	c = dial()
	ok = begin(c)
	w2 := ok.ResumeSeq
	if w2 < w1 {
		t.Fatalf("watermark moved backwards across resume: %d < %d", w2, w1)
	}
	sendRange(c, ok.StreamID, 1, total)
	if err := c.Send(0, &wire.EndStream{StreamID: ok.StreamID}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Expect(wire.KindStreamDone)
	if err != nil {
		t.Fatalf("end stream: %v", err)
	}
	done := m.(*wire.StreamDone)
	c.Close()
	if done.Watermark != total {
		t.Errorf("final watermark %d, want %d", done.Watermark, total)
	}
	if done.Replayed != w2 {
		t.Errorf("phase-3 replays %d, want %d (deltas at or below its resume watermark)", done.Replayed, w2)
	}
	if p.Injector.Injected() == 0 {
		t.Fatal("no faults were injected; the chaos run tested nothing")
	}

	// Differential check: streamed state must match the tuple-at-a-time
	// oracle byte for byte, with no delta double-applied across the resumes.
	const targetQ = "SELECT CUST_ID, CUST_NAME, JOIN_DATE FROM PROD.CUSTOMER"
	got, want := testhost.State(t, p.CDWEng, targetQ), testhost.State(t, refEng, targetQ)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("target diverged under seed %d:\n ref:  %v\n virt: %v", seed, want, got)
	}
	gotET := testhost.State(t, p.CDWEng, "SELECT SEQNO, SEQNO_END, ERRCODE FROM PROD.CUSTOMER_ET")
	sort.Strings(refET)
	if strings.Join(gotET, "\n") != strings.Join(refET, "\n") {
		t.Errorf("error table diverged under seed %d:\n ref:  %v\n virt: %v", seed, refET, gotET)
	}
}
