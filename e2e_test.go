package etlvirt_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
)

// TestBinariesEndToEnd builds the real binaries and runs the full
// multi-process deployment: cdwd (warehouse + object store directory),
// etlvirtd (virtualizer), and etlrun (legacy client) — the topology of
// Figure 1 with the virtualizer spliced in.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and orchestrates real binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}

	storeDir := filepath.Join(dir, "store")
	cdwAddr := freeAddr(t)
	nodeAddr := freeAddr(t)

	ddl := filepath.Join(dir, "init.sql")
	if err := os.WriteFile(ddl, []byte(`CREATE TABLE PROD.CUSTOMER (
		CUST_ID VARCHAR(5) NOT NULL,
		CUST_NAME VARCHAR(50),
		JOIN_DATE DATE,
		PRIMARY KEY (CUST_ID));`), 0o644); err != nil {
		t.Fatal(err)
	}

	cdwd := startProc(t, filepath.Join(bin, "cdwd"),
		"-listen", cdwAddr, "-store", storeDir, "-init", ddl)
	defer cdwd.Process.Kill()
	waitListening(t, cdwAddr)

	etlvirtd := startProc(t, filepath.Join(bin, "etlvirtd"),
		"-listen", nodeAddr, "-cdw", cdwAddr, "-store", storeDir)
	defer etlvirtd.Process.Kill()
	waitListening(t, nodeAddr)

	// job script + input on disk, exactly as an operator would run it
	input := filepath.Join(dir, "input.txt")
	if err := os.WriteFile(input,
		[]byte("123|Smith|2012-01-01\n456|Brown|xxxx\n157|Jones|2012-12-01\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "job.etl")
	if err := os.WriteFile(script, []byte(fmt.Sprintf(`
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile %s format vartext '|' layout CustLayout apply InsApply;
.end load;
`, input)), 0o644); err != nil {
		t.Fatal(err)
	}

	run := exec.Command(filepath.Join(bin, "etlrun"), "-addr", nodeAddr, script)
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("etlrun: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "inserted=2") || !strings.Contains(text, "errET=1") {
		t.Errorf("etlrun output:\n%s", text)
	}

	// verify through the legacy protocol that the data landed
	lg := etlscript.Logon{User: "u", Password: "p"}
	_, rows, err := etlclient.QueryRows(nodeAddr, lg,
		"SEL CUST_ID FROM PROD.CUSTOMER ORDER BY CUST_ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].S != "123" || rows[1][0].S != "157" {
		t.Errorf("rows: %v", rows)
	}
}

func startProc(t *testing.T, path string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(path, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", path, err)
	}
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server on %s never came up", addr)
}
