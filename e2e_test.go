package etlvirt_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/testhost"
)

// TestBinariesEndToEnd builds the real binaries and runs the full
// multi-process deployment: cdwd (warehouse + object store directory),
// etlvirtd (virtualizer), and etlrun (legacy client) — the topology of
// Figure 1 with the virtualizer spliced in.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and orchestrates real binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}

	storeDir := filepath.Join(dir, "store")
	cdwAddr := testhost.FreeAddr(t)
	nodeAddr := testhost.FreeAddr(t)

	ddl := filepath.Join(dir, "init.sql")
	if err := os.WriteFile(ddl, []byte(`CREATE TABLE PROD.CUSTOMER (
		CUST_ID VARCHAR(5) NOT NULL,
		CUST_NAME VARCHAR(50),
		JOIN_DATE DATE,
		PRIMARY KEY (CUST_ID));`), 0o644); err != nil {
		t.Fatal(err)
	}

	cdwd := testhost.StartProc(t, filepath.Join(bin, "cdwd"),
		"-listen", cdwAddr, "-store", storeDir, "-init", ddl)
	defer cdwd.Process.Kill()
	testhost.WaitListening(t, cdwAddr)

	etlvirtd := testhost.StartProc(t, filepath.Join(bin, "etlvirtd"),
		"-listen", nodeAddr, "-cdw", cdwAddr, "-store", storeDir)
	defer etlvirtd.Process.Kill()
	testhost.WaitListening(t, nodeAddr)

	// job script + input on disk, exactly as an operator would run it
	input := filepath.Join(dir, "input.txt")
	if err := os.WriteFile(input,
		[]byte("123|Smith|2012-01-01\n456|Brown|xxxx\n157|Jones|2012-12-01\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "job.etl")
	if err := os.WriteFile(script, []byte(fmt.Sprintf(`
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile %s format vartext '|' layout CustLayout apply InsApply;
.end load;
`, input)), 0o644); err != nil {
		t.Fatal(err)
	}

	// A reference EDW runs the same job first, so the virtualized run can be
	// differentially scrubbed against it in the same invocation.
	edwAddr := testhost.FreeAddr(t)
	edwd := testhost.StartProc(t, filepath.Join(bin, "edwd"),
		"-listen", edwAddr, "-init", ddl)
	defer edwd.Process.Kill()
	testhost.WaitListening(t, edwAddr)
	run := exec.Command(filepath.Join(bin, "etlrun"), "-addr", edwAddr, script)
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("etlrun against edwd: %v\n%s", err, out)
	}

	run = exec.Command(filepath.Join(bin, "etlrun"),
		"-addr", nodeAddr, "-scrub", edwAddr, script)
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("etlrun: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "inserted=2") || !strings.Contains(text, "errET=1") {
		t.Errorf("etlrun output:\n%s", text)
	}
	if !strings.Contains(text, "scrub CLEAN") {
		t.Errorf("etlrun -scrub output:\n%s", text)
	}

	// verify through the legacy protocol that the data landed
	lg := etlscript.Logon{User: "u", Password: "p"}
	_, rows, err := etlclient.QueryRows(nodeAddr, lg,
		"SEL CUST_ID FROM PROD.CUSTOMER ORDER BY CUST_ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].S != "123" || rows[1][0].S != "157" {
		t.Errorf("rows: %v", rows)
	}

	// The dedicated scrub binary verifies the same pair with an explicit
	// table list — the operator entry point that needs no job script.
	run = exec.Command(filepath.Join(bin, "etlscrub"),
		"-ref", edwAddr, "-subject", nodeAddr,
		"PROD.CUSTOMER:PROD.CUSTOMER_ET,PROD.CUSTOMER_UV")
	out, err = run.CombinedOutput()
	if err != nil {
		t.Fatalf("etlscrub: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "scrub CLEAN") {
		t.Errorf("etlscrub output:\n%s", out)
	}
}
