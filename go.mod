module etlvirt

go 1.22
