// Command cdwd runs the cloud data warehouse as a standalone server.
//
// The warehouse bulk-loads from an object store shared with the virtualizer
// node; in this deployment a directory tree stands in for the cloud bucket,
// so point -store at the same path etlvirtd uses.
//
// Usage:
//
//	cdwd -listen 127.0.0.1:7001 -store /tmp/etlvirt-store [-init ddl.sql]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"etlvirt/internal/cdw"
	"etlvirt/internal/cdwnet"
	"etlvirt/internal/cloudstore"
	"etlvirt/internal/faultinject"
	"etlvirt/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "address to serve the CDW protocol on")
	storeDir := flag.String("store", "", "object-store directory shared with etlvirtd (required)")
	initSQL := flag.String("init", "", "optional file of semicolon-separated DDL to run at startup")
	debugAddr := flag.String("debug", "", "optional address for /healthz, /metrics, /events and /debug/pprof (e.g. 127.0.0.1:7071)")
	eventLog := flag.Int("event-log", 0, "structured events kept in the /events ring buffer (0 = 1024)")
	faultSpec := flag.String("fault-spec", "", "fault-injection spec for engine-side store reads, e.g. 'store.get:rate=0.05' (empty = off)")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for -fault-spec schedules")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "cdwd: -store is required")
		os.Exit(2)
	}
	var store cloudstore.Store
	store, err := cloudstore.NewDirStore(*storeDir)
	if err != nil {
		log.Fatalf("cdwd: %v", err)
	}
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatalf("cdwd: -fault-spec: %v", err)
		}
		store = faultinject.NewStore(inj, store)
		log.Printf("cdwd: fault injection armed (seed %d): %s", *faultSeed, *faultSpec)
	}
	eng := cdw.NewEngine(store, cdw.Options{})

	if *initSQL != "" {
		script, err := os.ReadFile(*initSQL)
		if err != nil {
			log.Fatalf("cdwd: reading init script: %v", err)
		}
		if err := runInit(eng, string(script)); err != nil {
			log.Fatalf("cdwd: init script: %v", err)
		}
	}

	srv := cdwnet.NewServer(eng)
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		requests := reg.Counter("etlvirt_cdwd_requests_total", "Requests served by the CDW engine.")
		errors := reg.Counter("etlvirt_cdwd_errors_total", "Requests that returned an engine error.")
		lat := reg.Histogram("etlvirt_cdwd_request_seconds", "Engine latency per served request.", nil)
		srv.SetObserver(func(_ string, d time.Duration, errCode int) {
			requests.Inc()
			if errCode != 0 {
				errors.Inc()
			}
			lat.ObserveDuration(d)
		})
		events := obs.NewEventLog(*eventLog)
		srv.SetEventLog(events)
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("cdwd: debug listener: %v", err)
		}
		go func() {
			if err := http.Serve(ln, obs.DebugMux(reg, events)); err != nil {
				log.Printf("cdwd: debug server: %v", err)
			}
		}()
		log.Printf("cdwd: debug endpoints on http://%s", ln.Addr())
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("cdwd: %v", err)
	}
	log.Printf("cdwd: serving on %s, store at %s", addr, *storeDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("cdwd: shutting down")
	srv.Close()
}

func runInit(eng *cdw.Engine, script string) error {
	stmts := splitSQL(script)
	for _, s := range stmts {
		if _, err := eng.ExecSQL(s); err != nil {
			return fmt.Errorf("%q: %w", s, err)
		}
	}
	return nil
}

// splitSQL splits on semicolons outside single-quoted strings.
func splitSQL(src string) []string {
	var out []string
	start := 0
	inStr := false
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\'':
			inStr = !inStr
		case ';':
			if !inStr {
				if s := trimSpace(src[start:i]); s != "" {
					out = append(out, s)
				}
				start = i + 1
			}
		}
	}
	if s := trimSpace(src[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\n' || s[0] == '\t' || s[0] == '\r') {
		s = s[1:]
	}
	for len(s) > 0 {
		c := s[len(s)-1]
		if c != ' ' && c != '\n' && c != '\t' && c != '\r' {
			break
		}
		s = s[:len(s)-1]
	}
	return s
}
