// Command etlvirtd runs the virtualizer node: it listens for legacy
// ETL-client connections, cross-compiles their protocol and SQL, and
// executes jobs against a CDW server (cdwd), staging data through the shared
// object store.
//
// Usage:
//
//	etlvirtd -listen 127.0.0.1:7000 -cdw 127.0.0.1:7001 -store /tmp/etlvirt-store
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"etlvirt/internal/cloudstore"
	"etlvirt/internal/core"
	"etlvirt/internal/faultinject"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to serve the legacy protocol on")
	cdwAddr := flag.String("cdw", "127.0.0.1:7001", "address of the CDW server (cdwd)")
	storeDir := flag.String("store", "", "object-store directory shared with cdwd (required)")
	credits := flag.Int("credits", 0, "CreditManager pool size (0 = default)")
	memBudget := flag.Int64("mem-budget", 0, "in-flight chunk memory cap in bytes (0 = unlimited)")
	converters := flag.Int("converters", 0, "parallel DataConverter workers per job (0 = GOMAXPROCS)")
	writers := flag.Int("filewriters", 0, "parallel FileWriter goroutines per job (0 = default)")
	fileSize := flag.Int("filesize", 0, "intermediate file size threshold in bytes (0 = 4MiB)")
	gz := flag.Bool("gzip", false, "gzip intermediate files before upload")
	gzLevel := flag.Int("gzip-level", 0, "static gzip level 1..9 for intermediate files (0 = default)")
	copyFiles := flag.Int("copy-batch-files", 0, "uploaded files folded into each incremental COPY manifest (0 = 4)")
	serializedCopy := flag.Bool("serialized-copy", false, "disable the copy scheduler: one monolithic COPY after acquisition drains")
	adaptive := flag.Bool("adaptive-staging", false, "enable the staging-lane tuner (uploaders, spool size, gzip level, files per COPY)")
	tunerInterval := flag.Duration("tuner-interval", 0, "staging-lane tuner tick (0 = 200ms)")
	schemaMap := flag.String("schema-map", "", "legacy->CDW schema renames, e.g. PROD=analytics,DW=warehouse")
	maxErrors := flag.Int("maxerrors", 0, "default max_errors for jobs that do not set one")
	maxRetries := flag.Int("maxretries", 0, "default max_retries for jobs that do not set one")
	debugAddr := flag.String("debug", "", "optional address for /healthz, /metrics, /jobs, /jobs/active, /jobs/{id}/trace and /debug/pprof (e.g. 127.0.0.1:7070)")
	reportLog := flag.Int("report-log", 0, "completed job reports kept in memory (0 = 1024)")
	traceRetain := flag.Int("trace-retain", 0, "finished job traces kept for /jobs/{id}/trace (0 = 64)")
	traceSpans := flag.Int("trace-spans", 0, "span cap per job trace (0 = 8192)")
	eventLog := flag.Int("event-log", 0, "structured events kept in the /events ring buffer (0 = 1024)")
	eventFile := flag.String("event-file", "", "optional file to mirror the structured event log to as JSONL")
	faultSpec := flag.String("fault-spec", "", "fault-injection spec, e.g. 'store.put:rate=0.1,class=timeout;cdw.exec:every=50' (empty = off)")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for -fault-spec schedules")
	retryMax := flag.Int("retry-max", 0, "attempts per retried operation incl. the first (0 = 4)")
	retryBase := flag.Duration("retry-base", 0, "backoff before the first retry (0 = 5ms)")
	retryCap := flag.Duration("retry-cap", 0, "backoff ceiling (0 = 500ms)")
	retryBudget := flag.Int64("retry-budget", 0, "total retries allowed node-wide (0 = unlimited)")
	putTimeout := flag.Duration("put-timeout", 0, "per-put object-store deadline (0 = none)")
	cdwTimeout := flag.Duration("cdw-timeout", 0, "per-round-trip CDW deadline (0 = none)")
	streamLatency := flag.Duration("stream-latency-target", 0, "end-to-end commit latency target for CDC micro-batches (0 = 2s)")
	streamMinBatch := flag.Int("stream-min-batch", 0, "micro-batch size floor in deltas (0 = 16)")
	streamMaxBatch := flag.Int("stream-max-batch", 0, "micro-batch size ceiling in deltas (0 = 8192)")
	flag.Parse()

	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "etlvirtd: -store is required")
		os.Exit(2)
	}
	store, err := cloudstore.NewDirStore(*storeDir)
	if err != nil {
		log.Fatalf("etlvirtd: %v", err)
	}

	cfg := core.Config{
		CDWAddr:             *cdwAddr,
		Credits:             *credits,
		MemBudget:           *memBudget,
		Converters:          *converters,
		FileWriters:         *writers,
		FileSizeThreshold:   *fileSize,
		Gzip:                *gz,
		GzipLevel:           *gzLevel,
		CopyBatchFiles:      *copyFiles,
		SerializedCopy:      *serializedCopy,
		AdaptiveStaging:     *adaptive,
		TunerInterval:       *tunerInterval,
		MaxErrors:           *maxErrors,
		MaxRetries:          *maxRetries,
		ReportLogSize:       *reportLog,
		TraceRetention:      *traceRetain,
		TraceSpansPerJob:    *traceSpans,
		EventLogSize:        *eventLog,
		RetryMaxAttempts:    *retryMax,
		RetryBaseDelay:      *retryBase,
		RetryMaxDelay:       *retryCap,
		RetryBudget:         *retryBudget,
		PutTimeout:          *putTimeout,
		CDWTimeout:          *cdwTimeout,
		StreamLatencyTarget: *streamLatency,
		StreamMinBatch:      *streamMinBatch,
		StreamMaxBatch:      *streamMaxBatch,
		Logger:              slog.New(slog.NewTextHandler(os.Stderr, nil)),
	}
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatalf("etlvirtd: -fault-spec: %v", err)
		}
		cfg.FaultInjector = inj
		log.Printf("etlvirtd: fault injection armed (seed %d): %s", *faultSeed, *faultSpec)
	}
	if *eventFile != "" {
		f, err := os.OpenFile(*eventFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("etlvirtd: -event-file: %v", err)
		}
		defer f.Close()
		cfg.EventSink = f
	}
	if *schemaMap != "" {
		cfg.SchemaMap = map[string]string{}
		for _, pair := range strings.Split(*schemaMap, ",") {
			kv := strings.SplitN(pair, "=", 2)
			if len(kv) != 2 {
				log.Fatalf("etlvirtd: bad -schema-map entry %q", pair)
			}
			cfg.SchemaMap[strings.ToUpper(strings.TrimSpace(kv[0]))] = strings.TrimSpace(kv[1])
		}
	}

	node := core.NewNode(cfg, store)
	addr, err := node.Listen(*listen)
	if err != nil {
		log.Fatalf("etlvirtd: %v", err)
	}
	log.Printf("etlvirtd: serving legacy protocol on %s, CDW at %s, store at %s", addr, *cdwAddr, *storeDir)
	if *debugAddr != "" {
		dbg, err := node.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatalf("etlvirtd: debug listener: %v", err)
		}
		log.Printf("etlvirtd: debug endpoints on http://%s", dbg)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("etlvirtd: shutting down")
	node.Close()
	for _, r := range node.Reports() {
		log.Printf("etlvirtd: job %d target=%s acq=%v app=%v rows=%d errsET=%d errsUV=%d",
			r.JobID, r.Target, r.Acquisition, r.Application, r.RowsIn, r.ErrorsET, r.ErrorsUV)
	}
}
