// Command edwd runs the reference legacy Enterprise Data Warehouse: the
// server the virtualizer impersonates. It speaks the same wire protocol,
// enforces uniqueness natively and applies ETL DML tuple-at-a-time — run the
// same script against edwd and etlvirtd to compare semantics.
//
// Usage:
//
//	edwd -listen 127.0.0.1:7002 [-init ddl.sql]
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"etlvirt/internal/edw"
	"etlvirt/internal/obs"
	"etlvirt/internal/sqlxlate"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7002", "address to serve the legacy protocol on")
	initSQL := flag.String("init", "", "optional file of semicolon-separated legacy DDL to run at startup")
	debugAddr := flag.String("debug", "", "optional address for /healthz, /metrics and /debug/pprof (e.g. 127.0.0.1:7072)")
	flag.Parse()

	srv := edw.NewServer()
	if *initSQL != "" {
		script, err := os.ReadFile(*initSQL)
		if err != nil {
			log.Fatalf("edwd: reading init script: %v", err)
		}
		tr := &sqlxlate.Translator{}
		for _, stmt := range splitSQL(string(script)) {
			translated, err := tr.Translate(stmt)
			if err != nil {
				log.Fatalf("edwd: init statement %q: %v", stmt, err)
			}
			if _, err := srv.Engine().ExecSQL(translated); err != nil {
				log.Fatalf("edwd: init statement %q: %v", stmt, err)
			}
		}
	}

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("edwd: debug listener: %v", err)
		}
		go func() {
			if err := http.Serve(ln, obs.Handler(reg)); err != nil {
				log.Printf("edwd: debug server: %v", err)
			}
		}()
		log.Printf("edwd: debug endpoints on http://%s", ln.Addr())
	}

	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("edwd: %v", err)
	}
	log.Printf("edwd: legacy warehouse serving on %s", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("edwd: shutting down")
	srv.Close()
}

func splitSQL(src string) []string {
	var out []string
	start := 0
	inStr := false
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\'':
			inStr = !inStr
		case ';':
			if !inStr {
				if s := strings.TrimSpace(src[start:i]); s != "" {
					out = append(out, s)
				}
				start = i + 1
			}
		}
	}
	if s := strings.TrimSpace(src[start:]); s != "" {
		out = append(out, s)
	}
	return out
}
