package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// The ctxbg fixture package: two findings, analyzer ctxbg.
const ctxbgFixture = "./internal/lint/testdata/src/ctxbg"

// The spanbalance fixture: dataflow findings with CFG path witnesses.
const spanbalanceFixture = "./internal/lint/testdata/src/spanbalance"

func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", ctxbgFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var rep struct {
		Analyzers []struct{ Name string } `json:"analyzers"`
		Findings  []struct {
			Analyzer string `json:"analyzer"`
			Line     int    `json:"line"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Count != 2 || len(rep.Findings) != 2 {
		t.Fatalf("count = %d findings = %d, want 2", rep.Count, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "ctxbg" {
			t.Errorf("finding analyzer = %q, want ctxbg", f.Analyzer)
		}
	}
	if len(rep.Analyzers) != 12 {
		t.Errorf("analyzers = %d, want 12", len(rep.Analyzers))
	}
}

// TestJSONWitness pins the machine-readable dataflow evidence: a spanbalance
// finding carries its end position and the entry-to-violation statement path.
func TestJSONWitness(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "-enable=spanbalance", spanbalanceFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var rep struct {
		Findings []struct {
			Line    int `json:"line"`
			EndLine int `json:"endLine"`
			Witness []struct {
				Line int    `json:"line"`
				Text string `json:"text"`
			} `json:"witness"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings")
	}
	for _, f := range rep.Findings {
		if f.EndLine < f.Line {
			t.Errorf("finding at line %d: endLine = %d, want >= start", f.Line, f.EndLine)
		}
		if len(f.Witness) == 0 {
			t.Errorf("finding at line %d has no path witness", f.Line)
			continue
		}
		last := f.Witness[len(f.Witness)-1]
		if last.Text == "" || last.Line == 0 {
			t.Errorf("finding at line %d: empty witness step %+v", f.Line, last)
		}
	}
}

// TestTierFlag checks the two-stage split: the syntactic tier alone still
// catches the ctxbg fixture, the dataflow tier alone is clean on it, and the
// tiers partition the full analyzer set.
func TestTierFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-tier", "syntactic", ctxbgFixture}, &out, &errb); code != 1 {
		t.Fatalf("syntactic tier exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-tier", "dataflow", ctxbgFixture}, &out, &errb); code != 0 {
		t.Fatalf("dataflow tier exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if code := run([]string{"-tier", "nosuch", ctxbgFixture}, &out, &errb); code != 2 {
		t.Fatalf("unknown tier exit = %d, want 2", code)
	}

	var syntactic, dataflow strings.Builder
	countJSON := func(buf *strings.Builder, tier string) int {
		t.Helper()
		var errb strings.Builder
		// Tier selection happens before loading, so exit 1 (findings) and 0
		// are both fine here; 2 would mean the tier itself was rejected.
		if code := run([]string{"-json", "-tier", tier, ctxbgFixture}, buf, &errb); code == 2 {
			t.Fatalf("-tier %s exit = 2\nstderr: %s", tier, errb.String())
		}
		var rep struct {
			Analyzers []struct{ Name string } `json:"analyzers"`
		}
		if err := json.Unmarshal([]byte(buf.String()), &rep); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return len(rep.Analyzers)
	}
	ns, nd := countJSON(&syntactic, "syntactic"), countJSON(&dataflow, "dataflow")
	if ns+nd != 12 {
		t.Errorf("tiers do not partition the suite: syntactic=%d dataflow=%d, want 12 total", ns, nd)
	}
	if ns == 0 || nd == 0 {
		t.Errorf("degenerate tier split: syntactic=%d dataflow=%d", ns, nd)
	}
}

// TestCacheFlag checks incremental mode end to end: a second identical run
// must serve the cacheable analyzers from the cache and report the same
// findings.
func TestCacheFlag(t *testing.T) {
	dir := t.TempDir()
	var out1, err1 strings.Builder
	if code := run([]string{"-json", "-v", "-cache", dir, ctxbgFixture}, &out1, &err1); code != 1 {
		t.Fatalf("first run exit = %d, want 1\nstderr: %s", code, err1.String())
	}
	if !strings.Contains(err1.String(), "0 hit(s), 1 miss(es)") {
		t.Errorf("first run cache stats = %q, want a cold miss", err1.String())
	}
	var out2, err2 strings.Builder
	if code := run([]string{"-json", "-v", "-cache", dir, ctxbgFixture}, &out2, &err2); code != 1 {
		t.Fatalf("second run exit = %d, want 1\nstderr: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "1 hit(s), 0 miss(es)") {
		t.Errorf("second run cache stats = %q, want a warm hit", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cached run changed the report\n--- first ---\n%s--- second ---\n%s", out1.String(), out2.String())
	}
}

func TestDisableFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-disable=ctxbg", ctxbgFixture}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

func TestEnableFlag(t *testing.T) {
	var out, errb strings.Builder
	// only endian enabled: the ctxbg fixture is clean under it
	if code := run([]string{"-enable=endian", ctxbgFixture}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	if code := run([]string{"-enable=nosuch", ctxbgFixture}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
}

func TestListFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	names := []string{
		"ctxbg", "errwrapw", "endian", "retrysafe", "metricname", "goroleak",
		"hotalloc", "bufown", "spanbalance", "lockorder", "sqlident", "wirekind",
	}
	for _, name := range names {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
