package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// The ctxbg fixture package: two findings, analyzer ctxbg.
const ctxbgFixture = "./internal/lint/testdata/src/ctxbg"

func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", ctxbgFixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var rep struct {
		Analyzers []struct{ Name string } `json:"analyzers"`
		Findings  []struct {
			Analyzer string `json:"analyzer"`
			Line     int    `json:"line"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Count != 2 || len(rep.Findings) != 2 {
		t.Fatalf("count = %d findings = %d, want 2", rep.Count, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "ctxbg" {
			t.Errorf("finding analyzer = %q, want ctxbg", f.Analyzer)
		}
	}
	if len(rep.Analyzers) != 7 {
		t.Errorf("analyzers = %d, want 7", len(rep.Analyzers))
	}
}

func TestDisableFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-disable=ctxbg", ctxbgFixture}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

func TestEnableFlag(t *testing.T) {
	var out, errb strings.Builder
	// only endian enabled: the ctxbg fixture is clean under it
	if code := run([]string{"-enable=endian", ctxbgFixture}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	if code := run([]string{"-enable=nosuch", ctxbgFixture}, &out, &errb); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
}

func TestListFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxbg", "errwrapw", "endian", "retrysafe", "metricname", "goroleak"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
