// Command etlvirtlint runs the project's static-analysis suite: twelve
// dependency-free analyzers that enforce the pipeline's cross-cutting
// correctness invariants (see internal/lint and DESIGN.md "Static
// invariants").
//
// Usage:
//
//	etlvirtlint [flags] [packages]
//
//	etlvirtlint ./...
//	etlvirtlint -json ./internal/core
//	etlvirtlint -disable=goroleak ./...
//	etlvirtlint -enable=ctxbg,endian ./...
//	etlvirtlint -tier syntactic ./...
//	etlvirtlint -tier dataflow -cache .lintcache -v ./...
//
// Packages default to ./... relative to the module root containing the
// working directory. The exit status is 1 when any finding survives
// //nolint filtering, 2 on usage or load errors.
//
// -tier splits the suite by cost: "syntactic" selects the single-pass AST
// analyzers, "dataflow" the CFG/worklist ones; "all" (the default) runs
// both. -cache enables the per-package incremental cache for analyzers
// whose results depend only on their package and its module-internal
// dependency sources; -v reports hit/miss counts on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"etlvirt/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("etlvirtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and exit")
	tier := fs.String("tier", "all", "analyzer tier to run: all, syntactic, or dataflow")
	cacheDir := fs.String("cache", "", "directory for the per-package incremental result cache")
	verbose := fs.Bool("v", false, "report cache hit/miss statistics on stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: etlvirtlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(analyzers, *enable, *disable)
	if err != nil {
		fmt.Fprintln(stderr, "etlvirtlint:", err)
		return 2
	}
	analyzers, err = selectTier(analyzers, *tier)
	if err != nil {
		fmt.Fprintln(stderr, "etlvirtlint:", err)
		return 2
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "etlvirtlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "etlvirtlint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "etlvirtlint:", err)
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "etlvirtlint: warning: %s: %v\n", p.Path, terr)
		}
	}

	var res lint.Result
	if *cacheDir != "" {
		cache, err := lint.NewCache(*cacheDir, loader)
		if err != nil {
			fmt.Fprintln(stderr, "etlvirtlint:", err)
			return 2
		}
		res = lint.RunCached(cache, analyzers, pkgs)
		if *verbose {
			fmt.Fprintf(stderr, "etlvirtlint: cache: %d hit(s), %d miss(es) across %d package(s)\n",
				cache.Hits, cache.Misses, len(pkgs))
		}
	} else {
		res = (&lint.Runner{Analyzers: analyzers}).Run(pkgs)
		if *verbose {
			fmt.Fprintf(stderr, "etlvirtlint: cache disabled; analyzed %d package(s)\n", len(pkgs))
		}
	}

	if *jsonOut {
		return emitJSON(stdout, stderr, analyzers, res)
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if n := totalSuppressed(res); n > 0 {
		fmt.Fprintf(stderr, "etlvirtlint: %d finding(s) suppressed by //nolint (%s)\n", n, suppressionSummary(res))
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "etlvirtlint: %d finding(s)\n", len(res.Diagnostics))
		return 1
	}
	return 0
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Analyzers   []jsonAnalyzer `json:"analyzers"`
	Findings    []jsonFinding  `json:"findings"`
	Suppressed  map[string]int `json:"suppressed,omitempty"`
	FindingsLen int            `json:"count"`
}

type jsonAnalyzer struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

type jsonFinding struct {
	File      string        `json:"file"`
	Line      int           `json:"line"`
	Column    int           `json:"column"`
	EndLine   int           `json:"endLine,omitempty"`
	EndColumn int           `json:"endColumn,omitempty"`
	Analyzer  string        `json:"analyzer"`
	Message   string        `json:"message"`
	Witness   []jsonWitness `json:"witness,omitempty"`
}

// jsonWitness is one step of a dataflow finding's CFG path witness: the
// statement sequence from function entry that reaches the violation.
type jsonWitness struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Text string `json:"text"`
}

func emitJSON(stdout, stderr io.Writer, analyzers []*lint.Analyzer, res lint.Result) int {
	rep := jsonReport{Suppressed: res.Suppressed, FindingsLen: len(res.Diagnostics)}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, jsonAnalyzer{Name: a.Name, Doc: a.Doc})
	}
	for _, d := range res.Diagnostics {
		f := jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		}
		if d.End.IsValid() {
			f.EndLine, f.EndColumn = d.End.Line, d.End.Column
		}
		for _, w := range d.Witness {
			f.Witness = append(f.Witness, jsonWitness{File: w.Pos.Filename, Line: w.Pos.Line, Text: w.Text})
		}
		rep.Findings = append(rep.Findings, f)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(stderr, "etlvirtlint:", err)
		return 2
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable.
func selectAnalyzers(all []*lint.Analyzer, enable, disable string) ([]*lint.Analyzer, error) {
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := make(map[string]bool)
		if list == "" {
			return set, nil
		}
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q", n)
			}
			set[n] = true
		}
		return set, nil
	}
	on, err := parse(enable)
	if err != nil {
		return nil, err
	}
	off, err := parse(disable)
	if err != nil {
		return nil, err
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// selectTier filters analyzers by cost tier: the syntactic tier is the
// single-pass AST walkers, the dataflow tier the CFG/worklist analyzers.
func selectTier(all []*lint.Analyzer, tier string) ([]*lint.Analyzer, error) {
	switch tier {
	case "all", "":
		return all, nil
	case "syntactic", "dataflow":
		wantDataflow := tier == "dataflow"
		var out []*lint.Analyzer
		for _, a := range all {
			if a.Dataflow == wantDataflow {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no analyzers in tier %q after -enable/-disable filtering", tier)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown tier %q (want all, syntactic, or dataflow)", tier)
	}
}

func totalSuppressed(res lint.Result) int {
	n := 0
	for _, c := range res.Suppressed {
		n += c
	}
	return n
}

func suppressionSummary(res lint.Result) string {
	var names []string
	for name := range res.Suppressed {
		names = append(names, name)
	}
	sort.Strings(names)
	var parts []string
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, res.Suppressed[name]))
	}
	return strings.Join(parts, ", ")
}

// findModuleRoot walks up from the working directory to the first go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
