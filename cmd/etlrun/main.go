// Command etlrun is the legacy ETL client: it executes a proprietary job
// script (Example 2.1 of the paper) against any server speaking the legacy
// wire protocol — the reference warehouse (edwd) or the virtualizer
// (etlvirtd). Changing only -addr repoints the pipeline, which is the
// paper's replatforming story in one flag.
//
// Usage:
//
//	etlrun [-addr host:port] [-sessions N] [-chunk N] job.etl
//	etlrun -analyze workload.sql
//	etlrun -addr host:port -scrub refhost:port job.etl
//
// With -scrub, after the job completes etlrun runs the differential
// data-quality scrub: every table the script loads (and its error-table
// companions) is verified against the reference server layer by layer —
// schema, row counts, per-column checksums, null counts, error-table
// reconciliation. Divergence prints an attributed diff and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
	"etlvirt/internal/scrub"
	"etlvirt/internal/sqlxlate"
)

func main() {
	addr := flag.String("addr", "", "server address; overrides the script's .logon host")
	sessions := flag.Int("sessions", 0, "override the script's parallel session count")
	chunk := flag.Int("chunk", 0, "records per data chunk (0 = default)")
	streamLatency := flag.Int("stream-latency-target", 0, "override stream blocks' commit latency target in ms (0 = script value)")
	trace := flag.Bool("trace", false, "originate a distributed trace for the run and print its trace ID")
	analyze := flag.Bool("analyze", false, "run the workload pre-flight analysis on a SQL file instead of executing a job")
	scrubRef := flag.String("scrub", "", "after the run, differentially scrub the script's tables against this reference server")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: etlrun [flags] job.etl  |  etlrun -analyze workload.sql")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatalf("etlrun: %v", err)
	}

	if *analyze {
		report := sqlxlate.Analyze(string(src))
		fmt.Printf("statements: %d, fully translatable: %d (%.1f%%)\n",
			report.Statements, report.Translatable,
			100*float64(report.Translatable)/float64(max(1, report.Statements)))
		for _, f := range report.Findings {
			status := "auto"
			if !f.Translatable {
				status = "MANUAL REWRITE"
			}
			fmt.Printf("  stmt %d: %-16s %-14s %s\n", f.Statement, f.Construct, status, f.Detail)
		}
		return
	}

	script, err := etlscript.Parse(string(src))
	if err != nil {
		log.Fatalf("etlrun: %v", err)
	}
	res, err := etlclient.Run(script, etlclient.Options{
		Addr:            *addr,
		Sessions:        *sessions,
		ChunkRecords:    *chunk,
		StreamLatencyMS: *streamLatency,
		Trace:           *trace,
	})
	if err != nil {
		log.Fatalf("etlrun: %v", err)
	}
	if res.TraceID != "" {
		fmt.Printf("trace %s (fetch /traces/%s on the server's debug listener)\n", res.TraceID, res.TraceID)
	}
	for _, ir := range res.Imports {
		fmt.Printf("import %s: sent=%d staged=%d inserted=%d updated=%d deleted=%d errET=%d errUV=%d\n",
			ir.Table, ir.RowsSent, ir.RowsStaged, ir.Inserted, ir.Updated, ir.Deleted, ir.ErrorsET, ir.ErrorsUV)
		fmt.Printf("  phases: acquisition=%v application=%v total=%v\n",
			ir.Acquisition, ir.Application, ir.Total)
	}
	for _, er := range res.Exports {
		fmt.Printf("export %s: rows=%d total=%v\n", er.Outfile, er.Rows, er.Total)
	}
	for _, sr := range res.Streams {
		fmt.Printf("stream %s -> %s: sent=%d skipped=%d frames=%d watermark=%d inserted=%d updated=%d deleted=%d errET=%d replayed=%d\n",
			sr.Name, sr.Table, sr.DeltasSent, sr.Skipped, sr.Frames, sr.Watermark,
			sr.Inserted, sr.Updated, sr.Deleted, sr.ErrorsET, sr.Replayed)
		fmt.Printf("  final frame hint=%d total=%v\n", sr.FinalHint, sr.Total)
	}

	if *scrubRef != "" {
		subjectAddr := *addr
		if subjectAddr == "" {
			subjectAddr = script.Logon.Host
		}
		tables := scrub.ScriptTables(script)
		if len(tables) == 0 {
			log.Fatalf("etlrun: -scrub: the script loads no tables to verify")
		}
		rep, err := scrub.Run(
			&scrub.WireSource{Addr: *scrubRef, Logon: script.Logon},
			&scrub.WireSource{Addr: subjectAddr, Logon: script.Logon},
			scrub.Options{Tables: tables})
		if err != nil {
			log.Fatalf("etlrun: scrub: %v", err)
		}
		fmt.Print(rep.Diff())
		if !rep.OK {
			os.Exit(1)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
