// Command etlscrub runs the differential data-quality scrub between two
// servers speaking the legacy wire protocol — canonically the reference EDW
// and the virtualizer — and reports, layer by layer, whether they hold
// identical data. It needs nothing beyond a logon on each side: every check
// is a pushed-down aggregate query, so only tiny result rows travel.
//
// Usage:
//
//	etlscrub -ref host:port -subject host:port [flags] TABLE[:ET[,UV]] ...
//
// Each positional argument names one target table, optionally followed by
// its error-table companions after a colon, e.g.
//
//	etlscrub -ref :8401 -subject :8402 PROD.CUSTOMER:PROD.CUSTOMER_ET,PROD.CUSTOMER_UV
//
// -expect loads a workload manifest (the JSON array of expected outcomes a
// generated scenario emits) and additionally checks the reference side
// against it, catching the case where both engines agree on a wrong answer.
//
// Exit status: 0 clean, 1 diverged, 2 usage or transport error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"etlvirt/internal/etlscript"
	"etlvirt/internal/scrub"
)

func main() {
	ref := flag.String("ref", "", "reference server address (ground truth)")
	subject := flag.String("subject", "", "subject server address (side under verification)")
	user := flag.String("user", "etl", "logon user for both sides")
	pass := flag.String("pass", "etl", "logon password for both sides")
	expectPath := flag.String("expect", "", "workload manifest JSON (array of expected outcomes) to check the reference against")
	asJSON := flag.Bool("json", false, "emit the full report as JSON instead of the human diff")
	flag.Parse()

	if *ref == "" || *subject == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: etlscrub -ref host:port -subject host:port [flags] TABLE[:ET[,UV]] ...")
		os.Exit(2)
	}

	opts := scrub.Options{}
	for _, arg := range flag.Args() {
		tbl := scrub.Table{Name: arg}
		if name, errs, ok := strings.Cut(arg, ":"); ok {
			tbl = scrub.Table{Name: name}
			for _, e := range strings.Split(errs, ",") {
				if e = strings.TrimSpace(e); e != "" {
					tbl.ErrTables = append(tbl.ErrTables, e)
				}
			}
		}
		opts.Tables = append(opts.Tables, tbl)
	}
	if *expectPath != "" {
		data, err := os.ReadFile(*expectPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "etlscrub: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(data, &opts.Expect); err != nil {
			fmt.Fprintf(os.Stderr, "etlscrub: parsing %s: %v\n", *expectPath, err)
			os.Exit(2)
		}
	}

	lg := etlscript.Logon{User: *user, Password: *pass}
	rep, err := scrub.Run(
		&scrub.WireSource{Addr: *ref, Logon: lg},
		&scrub.WireSource{Addr: *subject, Logon: lg},
		opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etlscrub: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "etlscrub: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Diff())
	}
	if !rep.OK {
		os.Exit(1)
	}
}
