// Command benchfig regenerates the evaluation figures of §9 of the paper
// (Figures 7-11) on the in-process stack and prints the same series the
// paper plots. Absolute numbers reflect this substrate; the shapes are what
// the reproduction asserts.
//
// Usage:
//
//	benchfig              # all figures at the default scale
//	benchfig -fig 11      # one figure
//	benchfig -scale 10000 # more rows per paper-million (slower, smoother)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"etlvirt/internal/bench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (7-11); 0 = all")
	scale := flag.Int("scale", 0, "simulation rows per paper-million (0 = default)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations instead of the figures")
	staging := flag.Bool("staging", false, "run the staging-lane overlapped-vs-serialized comparison instead of the figures")
	traceOut := flag.String("trace-out", "", "run one traced Figure 7 import and write its Chrome trace JSON here instead of the figures")
	jsonOut := flag.String("json-out", "", "write the machine-readable benchmark report (Figure 7 + staging lane + alloc probes) here instead of the figures")
	flag.Parse()

	if *jsonOut != "" {
		data, err := bench.BuildJSONReport(*scale)
		check(err)
		check(os.WriteFile(*jsonOut, data, 0o644))
		fmt.Printf("wrote benchmark report (%d bytes) to %s\n", len(data), *jsonOut)
		return
	}

	if *staging {
		rows, err := bench.StagingLane(*scale)
		check(err)
		fmt.Println(bench.FormatStagingLane(rows))
		return
	}

	if *traceOut != "" {
		data, err := bench.Fig7Trace(*scale)
		check(err)
		check(os.WriteFile(*traceOut, data, 0o644))
		fmt.Printf("wrote Chrome trace (%d bytes) to %s\n", len(data), *traceOut)
		return
	}

	if *ablations {
		rows, err := bench.AblationSyncAck(*scale)
		check(err)
		fmt.Println(bench.FormatAblations("immediate ack vs synchronized pipeline (§5)", rows))
		rows, err = bench.AblationCompression(*scale)
		check(err)
		fmt.Println(bench.FormatAblations("intermediate-file compression on a slow uplink (§6)", rows))
		rows, err = bench.AblationFileSize(*scale)
		check(err)
		fmt.Println(bench.FormatAblations("intermediate-file size threshold (§6)", rows))
		return
	}

	runOne := func(n int) {
		switch n {
		case 7:
			rows, err := bench.Fig7(*scale)
			check(err)
			fmt.Println(bench.FormatFig7(rows))
		case 8:
			rows, err := bench.Fig8(*scale)
			check(err)
			fmt.Println(bench.FormatFig8(rows))
		case 9:
			rows, err := bench.Fig9(*scale)
			check(err)
			fmt.Println(bench.FormatFig9(rows))
		case 10:
			rows, err := bench.Fig10(*scale)
			check(err)
			fmt.Println(bench.FormatFig10(rows))
		case 11:
			rows, err := bench.Fig11(*scale)
			check(err)
			fmt.Println(bench.FormatFig11(rows))
		default:
			fmt.Fprintf(os.Stderr, "benchfig: no figure %d (supported: 7-11)\n", n)
			os.Exit(2)
		}
	}
	if *fig != 0 {
		runOne(*fig)
		return
	}
	for n := 7; n <= 11; n++ {
		runOne(n)
	}
}

func check(err error) {
	if err != nil {
		log.Fatalf("benchfig: %v", err)
	}
}
