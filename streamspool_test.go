package etlvirt_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"etlvirt/internal/core"
	"etlvirt/internal/ltype"
	"etlvirt/internal/stream"
	"etlvirt/internal/testhost"
	"etlvirt/internal/wire"
)

// TestStreamResumeAtSpoolRotation pins the checkpoint/resume contract at the
// one boundary where two cut conditions coincide: records are sized so the
// spool crosses its rotation threshold (the 64 KiB MinSpoolBytes floor)
// exactly on the micro-batch's final row, so the batch commits from a fully
// rotated spool object with an empty remainder buffer. A client kill right
// after that commit, followed by a full from-delta-1 replay, must resume at
// the rotated batch's watermark, re-apply nothing, and land the same final
// state a plain in-order application produces.
func TestStreamResumeAtSpoolRotation(t *testing.T) {
	const (
		batch   = 16
		total   = 48
		payload = 4150 // CSV row ≈ 4160 bytes; 16 rows cross 64 KiB, 15 do not
	)
	// The sizing premise the whole test rests on: rotation (>= 64 KiB) fires
	// on row 16 of a batch, never earlier. CSV rows are
	// "<seq>,<5-char key>,<payload>\n".
	minRow := 1 + 1 + 5 + 1 + payload + 1 // single-digit seq
	maxRow := 2 + 1 + 5 + 1 + payload + 1 // two-digit seq (total <= 99)
	if batch*minRow < 64<<10 {
		t.Fatalf("sizing premise broken: %d rows * %d bytes < 64KiB, rotation misses the boundary", batch, minRow)
	}
	if (batch-1)*maxRow >= 64<<10 {
		t.Fatalf("sizing premise broken: %d rows * %d bytes >= 64KiB, rotation fires early", batch-1, maxRow)
	}

	const ddl = `CREATE TABLE WD.T (
	ID VARCHAR(5) NOT NULL,
	PAYLOAD VARCHAR(4200),
	PRIMARY KEY (ID))`
	const applySQL = `insert into WD.T values ( trim(:ID), trim(:PAYLOAD) )`

	// Upsert-only delta stream over a 40-key space: first image of a key
	// inserts, later images update. The last image per key is the oracle.
	type img struct{ id, payload string }
	deltas := make([]img, 0, total)
	expect := map[string]string{}
	ops := make([]stream.Op, 0, total)
	for i := 1; i <= total; i++ {
		id := fmt.Sprintf("K%04d", 1+(i*7)%40)
		pl := strings.Repeat(string(rune('a'+i%26)), payload)
		op := stream.OpUpdate
		if _, live := expect[id]; !live {
			op = stream.OpInsert
		}
		deltas = append(deltas, img{id: id, payload: pl})
		ops = append(ops, op)
		expect[id] = pl
	}

	p := testhost.StartPair(t, testhost.Options{
		DDL: []string{ddl},
		Node: func(cfg *core.Config) {
			// Pin the adaptive batch to exactly the rotation-crossing width.
			cfg.StreamMinBatch = batch
			cfg.StreamMaxBatch = batch
		},
	})

	layout := &ltype.Layout{Name: "WideLayout", Fields: []ltype.Field{
		{Name: "ID", Type: ltype.VarChar(5)},
		{Name: "PAYLOAD", Type: ltype.VarChar(4200)},
	}}
	dial := func() *wire.Conn {
		c, err := wire.Dial(p.NodeAddr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(0, &wire.Logon{User: "u", Password: "p"}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Expect(wire.KindLogonOK); err != nil {
			t.Fatal(err)
		}
		return c
	}
	begin := func(c *wire.Conn) *wire.StreamOK {
		if err := c.Send(0, &wire.BeginStream{
			Name: "wide_cdc", Table: "WD.T", ErrTableET: "WD.T_ET",
			Layout: layout, Format: wire.FormatVartext, Delim: '|', SQL: applySQL,
		}); err != nil {
			t.Fatal(err)
		}
		m, err := c.Expect(wire.KindStreamOK)
		if err != nil {
			t.Fatalf("begin stream: %v", err)
		}
		return m.(*wire.StreamOK)
	}
	sendRange := func(c *wire.Conn, id uint64, lo, hi int) []*wire.DeltaAck {
		var acks []*wire.DeltaAck
		for f := lo; f <= hi; f += batch {
			end := f + batch - 1
			if end > hi {
				end = hi
			}
			var pay []byte
			for s := f; s <= end; s++ {
				rec := fmt.Sprintf("%s|%s\n", deltas[s-1].id, deltas[s-1].payload)
				pay = stream.AppendDelta(pay, ops[s-1], []byte(rec))
			}
			if err := c.Send(0, &wire.DeltaFrame{
				StreamID: id, FirstSeq: uint64(f), Count: uint32(end - f + 1), Payload: pay,
			}); err != nil {
				t.Fatal(err)
			}
			m, err := c.Expect(wire.KindDeltaAck)
			if err != nil {
				t.Fatalf("frame at seq %d: %v", f, err)
			}
			acks = append(acks, m.(*wire.DeltaAck))
		}
		return acks
	}
	waitIdle := func() {
		deadline := time.Now().Add(10 * time.Second)
		for {
			busy := false
			for _, j := range p.Node.ActiveJobs() {
				if j.Kind == "stream" {
					busy = true
				}
			}
			if !busy {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("stream jobs still active after kill")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: two full batches, each cut at the spool-rotation boundary,
	// then a kill with a third of the stream unsent. The checkpoint after
	// each frame must sit exactly on the batch edge — the rotated spool was
	// committed whole, nothing straddles.
	c := dial()
	ok := begin(c)
	if ok.ResumeSeq != 0 {
		t.Fatalf("fresh stream resumes at %d", ok.ResumeSeq)
	}
	acks := sendRange(c, ok.StreamID, 1, 2*batch)
	if len(acks) != 2 || acks[0].CommittedSeq != batch || acks[1].CommittedSeq != 2*batch {
		t.Fatalf("batch-edge checkpoints wrong: %+v", acks)
	}
	c.Close()
	waitIdle()

	// Phase 2: resume. The durable watermark must be the rotated batch edge,
	// and a full from-delta-1 replay must drop everything at or below it.
	c = dial()
	ok = begin(c)
	if ok.ResumeSeq != 2*batch {
		t.Fatalf("resume watermark %d, want %d", ok.ResumeSeq, 2*batch)
	}
	acks = sendRange(c, ok.StreamID, 1, total)
	for i, a := range acks[:2] {
		if a.CommittedSeq != 2*batch {
			t.Errorf("replayed frame %d moved the watermark to %d", i, a.CommittedSeq)
		}
	}
	if last := acks[len(acks)-1]; last.CommittedSeq != total {
		t.Errorf("final checkpoint %d, want %d", last.CommittedSeq, total)
	}
	if err := c.Send(0, &wire.EndStream{StreamID: ok.StreamID}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Expect(wire.KindStreamDone)
	if err != nil {
		t.Fatalf("end stream: %v", err)
	}
	done := m.(*wire.StreamDone)
	c.Close()
	if done.Watermark != total {
		t.Errorf("final watermark %d, want %d", done.Watermark, total)
	}
	if done.Replayed != 2*batch {
		t.Errorf("replayed %d deltas, want %d (everything at or below the resume watermark)",
			done.Replayed, 2*batch)
	}

	// The landed state must be the last image per key — no delta lost at the
	// rotation boundary, none double-applied by the replay.
	rows := testhost.State(t, p.CDWEng, "SELECT ID, PAYLOAD FROM WD.T")
	if len(rows) != len(expect) {
		t.Fatalf("landed %d keys, want %d", len(rows), len(expect))
	}
	for _, r := range rows {
		id, pl, _ := strings.Cut(r, "|")
		if expect[id] != pl {
			t.Errorf("key %s landed a stale or corrupted image (len %d)", id, len(pl))
		}
	}
}
