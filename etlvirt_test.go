package etlvirt_test

import (
	"strings"
	"testing"

	"etlvirt"
	"etlvirt/internal/etlclient"
	"etlvirt/internal/etlscript"
)

const qsScript = `
.logon host/user,pass;
.layout L;
.field K varchar(5);
.field V varchar(50);
.begin import tables t errortables t_ET t_UV;
.dml label I;
insert into t values (trim(:K), trim(:V));
.import infile in.txt format vartext '|' layout L apply I;
.end load;
`

func TestStackQuickstartFlow(t *testing.T) {
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if _, err := stack.ExecCDW("CREATE TABLE t (K VARCHAR(5), V VARCHAR(50))"); err != nil {
		t.Fatal(err)
	}
	res, err := etlvirt.RunScriptSource(qsScript, etlvirt.RunOptions{
		Addr:     stack.NodeAddr,
		ReadFile: func(string) ([]byte, error) { return []byte("1|one\n2|two\n3|three\n"), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imports[0].Inserted != 3 {
		t.Errorf("inserted = %d", res.Imports[0].Inserted)
	}
	rows, err := stack.ExecCDW("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rows[0][0].I != 3 {
		t.Errorf("count = %v", rows.Rows[0][0])
	}
	if len(stack.Reports()) != 1 {
		t.Errorf("reports: %d", len(stack.Reports()))
	}
}

func TestStackThrottledUplink(t *testing.T) {
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{UplinkBytesPerSec: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if _, err := stack.ExecCDW("CREATE TABLE t (K VARCHAR(5), V VARCHAR(50))"); err != nil {
		t.Fatal(err)
	}
	var data strings.Builder
	for i := 0; i < 300; i++ {
		data.WriteString("1|0123456789012345678901234567890123456789\n")
	}
	res, err := etlvirt.RunScriptSource(qsScript, etlvirt.RunOptions{
		Addr:     stack.NodeAddr,
		ReadFile: func(string) ([]byte, error) { return []byte(data.String()), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stack.Reports()[0]
	// ~13KB over a 64KB/s link: the upload throttle must be visible in the
	// acquisition phase.
	if r.Acquisition.Milliseconds() < 100 {
		t.Errorf("uplink throttle not applied: acquisition %v", r.Acquisition)
	}
	_ = res
}

func TestParseScriptAndAnalyze(t *testing.T) {
	s, err := etlvirt.ParseScript(qsScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 1 {
		t.Errorf("steps: %d", len(s.Steps))
	}
	rep := etlvirt.Analyze("SELECT ZEROIFNULL(x) FROM t; SELECT cast(x as BYTE(2) format 'z') FROM t;")
	if rep.Statements != 2 || rep.Translatable != 1 {
		t.Errorf("analysis: %+v", rep)
	}
	// the untranslatable FORMAT cast is flagged both as a construct finding
	// and as a statement-level verdict
	if len(rep.ManualRewrites()) == 0 {
		t.Errorf("manual rewrites: %+v", rep.ManualRewrites())
	}
}

func TestLegacyEDWOracleThroughFacade(t *testing.T) {
	srv, addr, err := etlvirt.NewLegacyEDW("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	lg := etlscript.Logon{User: "u", Password: "p"}
	if _, err := etlclient.Exec(addr, lg, "CREATE TABLE t (K VARCHAR(5), V VARCHAR(50))"); err != nil {
		t.Fatal(err)
	}
	res, err := etlvirt.RunScriptSource(qsScript, etlvirt.RunOptions{
		Addr:     addr,
		ReadFile: func(string) ([]byte, error) { return []byte("1|one\n"), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Imports[0].Inserted != 1 {
		t.Errorf("inserted = %d", res.Imports[0].Inserted)
	}
}
