// Quickstart: run the paper's Example 2.1 ETL script, unmodified, against a
// cloud data warehouse through the virtualizer.
//
// The in-process stack stands in for the full deployment (object store, CDW
// server, virtualizer node); the script and the client are exactly what
// would talk to the legacy warehouse.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"etlvirt"
)

const script = `
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
	format vartext '|' layout CustLayout
	apply InsApply;
.end load;
`

const inputFile = `101|Ada Lovelace|1998-03-14
102|Edgar Codd|2001-07-02
103|Grace Hopper|1999-12-09
104|Jim Gray|2003-05-21
`

func main() {
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// The target table lives in the CDW; in a migration this DDL comes from
	// the translated legacy schema.
	if _, err := stack.ExecCDW(`CREATE TABLE PROD.CUSTOMER (
		CUST_ID VARCHAR(5) NOT NULL,
		CUST_NAME VARCHAR(50),
		JOIN_DATE DATE,
		PRIMARY KEY (CUST_ID))`); err != nil {
		log.Fatal(err)
	}

	// The legacy client connects to the virtualizer exactly as it would to
	// the old warehouse — only the address differs.
	res, err := etlvirt.RunScriptSource(script, etlvirt.RunOptions{
		Addr:     stack.NodeAddr,
		ReadFile: func(string) ([]byte, error) { return []byte(inputFile), nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	ir := res.Imports[0]
	fmt.Printf("loaded %d rows into %s (acquisition %v, application %v)\n",
		ir.Inserted, ir.Table, ir.Acquisition.Round(1e6), ir.Application.Round(1e6))

	rows, err := stack.ExecCDW("SELECT cust_id, cust_name, join_date FROM PROD.CUSTOMER ORDER BY cust_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPROD.CUSTOMER in the cloud warehouse:")
	for _, row := range rows.Rows {
		fmt.Printf("  %s  %-15s %s\n", row[0].Render(), row[1].Render(), row[2].Render())
	}

	for _, r := range stack.Reports() {
		fmt.Printf("\nvirtualizer report: chunks=%d bytesIn=%d staged=%d files=%d uploaded=%dB\n",
			r.Chunks, r.BytesIn, r.RowsStaged, r.FilesWritten, r.BytesUpload)
	}
}
