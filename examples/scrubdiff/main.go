// Differential data-quality scrub: the replatforming acceptance gate.
//
// A generated multi-group workload — mixed imports with injected conversion
// errors and duplicate keys, every legacy column type, a deterministic
// export and a CDC stream — runs twice: natively on the reference legacy
// EDW and through the virtualizer into the CDW. The post-load scrub then
// verifies, layer by layer, that both warehouses hold identical data: row
// counts, per-column order-insensitive checksums, null patterns,
// error-table reconciliation, and the generator's expected-outcome
// manifest. Finally one cell is tampered with on the virtualized side to
// show the scrub attributing the divergence to its exact table and column.
//
//	go run ./examples/scrubdiff
package main

import (
	"fmt"
	"log"

	"etlvirt"
	"etlvirt/internal/scrub"
	"etlvirt/internal/workload"
)

func main() {
	sc, err := workload.Generate(workload.Config{Groups: 8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated scenario: %d batch groups, %d tables, %d input files\n\n",
		len(sc.Groups), len(sc.Tables), len(sc.Files))

	// Reference legacy warehouse and virtualized stack, identically seeded.
	edwSrv, edwAddr, err := etlvirt.NewLegacyEDW("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer edwSrv.Close()
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	for _, ddl := range sc.DDL {
		if _, err := edwSrv.Engine().ExecSQL(ddl); err != nil {
			log.Fatal(err)
		}
		if _, err := stack.ExecCDW(ddl); err != nil {
			log.Fatal(err)
		}
	}

	// The same script, byte for byte, against both backends.
	for _, addr := range []string{edwAddr, stack.NodeAddr} {
		res, err := etlvirt.RunScriptSource(sc.Script, etlvirt.RunOptions{
			Addr: addr,
			ReadFile: func(name string) ([]byte, error) {
				return sc.Files[name], nil
			},
			WriteFile: func(name string, data []byte) error { return nil },
		})
		if err != nil {
			log.Fatal(err)
		}
		var ins, errs int64
		for _, ir := range res.Imports {
			ins += ir.Inserted
			errs += ir.ErrorsET + ir.ErrorsUV
		}
		fmt.Printf("ran %d-step script on %s: %d rows inserted, %d rejects captured\n",
			len(res.Imports)+len(res.Exports)+len(res.Streams), addr, ins, errs)
	}

	ref := &scrub.EngineSource{Name: "edw", Engine: edwSrv.Engine()}
	sub := &scrub.EngineSource{Name: "virt", Engine: stack.Engine}
	opts := scrub.Options{Tables: sc.Tables, Expect: sc.Expect}

	rep, err := scrub.Run(ref, sub, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Diff())

	// Tamper with one cell on the virtualized side; the scrub pinpoints it.
	fmt.Println("\ntampering: UPDATE WL.G00 SET C1 = 'oops' WHERE PK = (MIN) ...")
	res, err := stack.ExecCDW("SELECT MIN(PK) FROM WL.G00")
	if err != nil || len(res.Rows) == 0 {
		log.Fatal(err)
	}
	if _, err := stack.ExecCDW(fmt.Sprintf(
		"UPDATE WL.G00 SET C1 = 'oops' WHERE PK = '%s'", res.Rows[0][0].Render())); err != nil {
		log.Fatal(err)
	}
	rep, err = scrub.Run(ref, sub, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Diff())
}
