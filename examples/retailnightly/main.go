// Retail nightly batch: a scaled-down version of the paper's §8 case study.
//
// A large retailer runs 127 batch groups nightly under a strict SLA; groups
// are sequences of steps (file preparation, bulk loads, in-warehouse
// transformations) and dependencies between groups bound the parallelism.
// This example executes a dependency-ordered DAG of batch groups against a
// single virtualizer node — all jobs share one CreditManager, the scenario
// of §5 — and prints an SLA-style report.
//
//	go run ./examples/retailnightly
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"etlvirt"
)

// group is one batch group: loads for a set of store regions into one table,
// then an in-warehouse aggregation step, gated on other groups.
type group struct {
	name      string
	table     string
	rows      int
	dependsOn []string
}

func main() {
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{
		Node: etlvirt.NodeConfig{Credits: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// A 12-group slice of the nightly plan: ingest groups feed rollup groups.
	groups := []group{
		{name: "sales_food", table: "dw.sales_food", rows: 1200},
		{name: "sales_wholesale", table: "dw.sales_wholesale", rows: 900},
		{name: "sales_fuel", table: "dw.sales_fuel", rows: 600},
		{name: "sales_pharma", table: "dw.sales_pharma", rows: 500},
		{name: "returns", table: "dw.returns", rows: 400},
		{name: "inventory", table: "dw.inventory", rows: 1000},
		{name: "labor", table: "dw.labor", rows: 700},
		{name: "insurance", table: "dw.insurance", rows: 300},
		{name: "rollup_sales", table: "dw.rollup_sales", rows: 0,
			dependsOn: []string{"sales_food", "sales_wholesale", "sales_fuel", "sales_pharma"}},
		{name: "rollup_ops", table: "dw.rollup_ops", rows: 0,
			dependsOn: []string{"inventory", "labor"}},
		{name: "margin", table: "dw.margin", rows: 0,
			dependsOn: []string{"rollup_sales", "returns"}},
		{name: "exec_dashboard", table: "dw.dashboard", rows: 0,
			dependsOn: []string{"margin", "rollup_ops", "insurance"}},
	}

	// create targets
	for _, g := range groups {
		if g.rows > 0 {
			if _, err := stack.ExecCDW(fmt.Sprintf(
				`CREATE TABLE %s (store VARCHAR(8) NOT NULL, day DATE, amount DECIMAL(12,2))`,
				g.table)); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, err := stack.ExecCDW(fmt.Sprintf(
				`CREATE TABLE %s (day DATE, total DOUBLE)`, g.table)); err != nil {
				log.Fatal(err)
			}
		}
	}

	type outcome struct {
		dur  time.Duration
		rows int64
	}
	results := make(map[string]outcome)
	var mu sync.Mutex
	done := make(map[string]chan struct{}, len(groups))
	for _, g := range groups {
		done[g.name] = make(chan struct{})
	}

	nightStart := time.Now()
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g group) {
			defer wg.Done()
			defer close(done[g.name])
			for _, dep := range g.dependsOn {
				<-done[dep]
			}
			start := time.Now()
			var rows int64
			var err error
			if g.rows > 0 {
				rows, err = runIngest(stack, g)
			} else {
				rows, err = runRollup(stack, g)
			}
			if err != nil {
				log.Fatalf("group %s: %v", g.name, err)
			}
			mu.Lock()
			results[g.name] = outcome{dur: time.Since(start), rows: rows}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	night := time.Since(nightStart)

	fmt.Println("nightly batch report (dependency-ordered, one shared virtualizer node)")
	fmt.Println("group              rows      duration")
	for _, g := range groups {
		r := results[g.name]
		deps := ""
		if len(g.dependsOn) > 0 {
			deps = "  <- " + strings.Join(g.dependsOn, ", ")
		}
		fmt.Printf("%-16s %6d %12v%s\n", g.name, r.rows, r.dur.Round(time.Millisecond), deps)
	}
	fmt.Printf("\nnight complete in %v; credit pool stats: %+v\n",
		night.Round(time.Millisecond), stack.Node.Credits())
}

// runIngest runs one legacy bulk-load script through the virtualizer.
func runIngest(stack *etlvirt.Stack, g group) (int64, error) {
	var data strings.Builder
	for i := 0; i < g.rows; i++ {
		fmt.Fprintf(&data, "S%06d|2023-11-%02d|%d.%02d\n", i, 1+i%28, 100+i, i%100)
	}
	script := fmt.Sprintf(`
.logon host/nightly,secret;
.layout L;
.field STORE varchar(8);
.field DAY varchar(10);
.field AMOUNT varchar(14);
.begin import tables %s errortables %s_ET %s_UV sessions 2;
.dml label Ins;
insert into %s values (trim(:STORE),
	cast(:DAY as DATE format 'YYYY-MM-DD'),
	cast(:AMOUNT as DECIMAL(12,2)));
.import infile data.txt format vartext '|' layout L apply Ins;
.end load;
`, g.table, g.table, g.table, g.table)
	res, err := etlvirt.RunScriptSource(script, etlvirt.RunOptions{
		Addr:         stack.NodeAddr,
		ChunkRecords: 200,
		ReadFile:     func(string) ([]byte, error) { return []byte(data.String()), nil },
	})
	if err != nil {
		return 0, err
	}
	return res.Imports[0].Inserted, nil
}

// runRollup runs an in-warehouse transformation through the virtualizer's
// ad-hoc SQL path (the legacy script's .run step).
func runRollup(stack *etlvirt.Stack, g group) (int64, error) {
	src := strings.TrimPrefix(g.dependsOn[0], "")
	srcTable := "dw." + strings.TrimPrefix(src, "rollup_")
	switch g.name {
	case "rollup_sales":
		srcTable = "dw.sales_food"
	case "rollup_ops":
		srcTable = "dw.inventory"
	case "margin":
		srcTable = "dw.rollup_sales"
	case "exec_dashboard":
		srcTable = "dw.margin"
	}
	script := fmt.Sprintf(`
.logon host/nightly,secret;
.run INSERT INTO %s SELECT day, sum(amount) FROM %s GROUP BY day;
`, g.table, srcTable)
	if strings.HasPrefix(g.name, "margin") || g.name == "exec_dashboard" {
		script = fmt.Sprintf(`
.logon host/nightly,secret;
.run INSERT INTO %s SELECT day, sum(total) FROM %s GROUP BY day;
`, g.table, srcTable)
	}
	if _, err := etlvirt.RunScriptSource(script, etlvirt.RunOptions{Addr: stack.NodeAddr}); err != nil {
		return 0, err
	}
	res, err := stack.ExecCDW("SELECT count(*) FROM " + g.table)
	if err != nil {
		return 0, err
	}
	return res.Rows[0][0].I, nil
}
