// CDC streaming: keep a legacy-protocol session open and feed continuous
// change-data-capture deltas into the cloud warehouse as adaptively sized
// micro-batches.
//
// The script's stream block names the stream (its durable checkpoint
// identity), the target table and an error table, and sets a commit-latency
// target. The virtualizer's controller watches observed end-to-end commit
// latency and resizes the micro-batches; the client's frame size follows the
// controller's live hint, so the adaptation is visible from the outside.
//
// The run happens twice on purpose: the second pass replays the same delta
// file plus a tail of fresh changes, and the checkpoint watermark makes the
// client skip everything already applied — no delta is applied twice.
//
//	go run ./examples/cdcstream
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"etlvirt"
	"etlvirt/internal/obs"
)

const script = `
.logon host/user,pass;
.layout AcctLayout;
.field ACCT_ID varchar(8);
.field OWNER varchar(40);
.field BALANCE varchar(12);
.begin stream name acct_cdc tables PROD.ACCOUNT
	errortables PROD.ACCOUNT_ET latency 75;
.dml label Apply;
insert into PROD.ACCOUNT values (
	trim(:ACCT_ID), trim(:OWNER),
	cast(:BALANCE as DECIMAL(12,2)) );
.stream infile deltas.txt format vartext '|' layout AcctLayout apply Apply;
.end stream;
`

// genDeltas builds n CDC records: an insert for every account, then a
// rolling mix of balance updates and a few closures (deletes).
func genDeltas(n int) []byte {
	var out []byte
	accounts := n / 3
	if accounts < 1 {
		accounts = 1
	}
	for i := 0; i < n; i++ {
		acct := i % accounts
		switch {
		case i < accounts:
			out = append(out, fmt.Sprintf("I|A%06d|Owner %d|%d.00\n", acct, acct, 100+acct)...)
		case i%17 == 0:
			out = append(out, fmt.Sprintf("D|A%06d||0.00\n", acct)...)
		default:
			out = append(out, fmt.Sprintf("U|A%06d|Owner %d|%d.50\n", acct, acct, 100+i)...)
		}
	}
	return out
}

func runOnce(stack *etlvirt.Stack, deltas []byte) etlvirt.RunResult {
	res, err := etlvirt.RunScriptSource(script, etlvirt.RunOptions{
		Addr:     stack.NodeAddr,
		ReadFile: func(string) ([]byte, error) { return deltas, nil },
		Trace:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return *res
}

func main() {
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	if _, err := stack.ExecCDW(`CREATE TABLE PROD.ACCOUNT (
		ACCT_ID VARCHAR(8) NOT NULL,
		OWNER VARCHAR(40),
		BALANCE DECIMAL(12,2),
		PRIMARY KEY (ACCT_ID))`); err != nil {
		log.Fatal(err)
	}

	deltas := genDeltas(3000)
	start := time.Now()
	run := runOnce(stack, deltas)
	sr := run.Streams[0]
	fmt.Printf("stream %s -> %s\n", sr.Name, sr.Table)
	fmt.Printf("  %d deltas in %d frames over %v (%.0f deltas/s)\n",
		sr.DeltasSent, sr.Frames, time.Since(start).Round(time.Millisecond),
		float64(sr.DeltasSent)/time.Since(start).Seconds())
	fmt.Printf("  applied: inserted=%d updated=%d deleted=%d errET=%d watermark=%d\n",
		sr.Inserted, sr.Updated, sr.Deleted, sr.ErrorsET, sr.Watermark)
	fmt.Printf("  controller: frame hint adapted to %d deltas/frame (75ms latency target)\n",
		sr.FinalHint)
	if tid, err := obs.ParseTraceID(run.TraceID); err == nil {
		if snap, ok := stack.Node.Tracer().TraceByID(tid); ok {
			procs := map[string]bool{}
			for _, sp := range snap.Spans {
				procs[sp.Proc] = true
			}
			names := make([]string, 0, len(procs))
			for p := range procs {
				names = append(names, p)
			}
			sort.Strings(names)
			fmt.Printf("  trace %s: %d spans across %s (GET /traces/%s?format=chrome for the timeline)\n",
				run.TraceID, len(snap.Spans), strings.Join(names, "+"), run.TraceID)
		}
	}

	rows, err := stack.ExecCDW("SELECT count(*) FROM PROD.ACCOUNT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  PROD.ACCOUNT now holds %s rows\n", rows.Rows[0][0].Render())

	// Second pass: the same deltas again, plus 300 fresh ones. The durable
	// watermark turns the overlap into a client-side skip.
	tail := genDeltas(3300)
	sr = runOnce(stack, tail).Streams[0]
	fmt.Printf("\nresumed stream %s\n", sr.Name)
	fmt.Printf("  skipped %d already-applied deltas, sent %d new (watermark %d -> %d)\n",
		sr.Skipped, sr.DeltasSent, sr.Skipped, sr.Watermark)

	rows, err = stack.ExecCDW("SELECT count(*) FROM PROD.ACCOUNT")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  PROD.ACCOUNT now holds %s rows\n", rows.Rows[0][0].Render())
}
