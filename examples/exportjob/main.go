// Export job: the reverse data path of Figure 2(b). Data is bulk-loaded
// through the virtualizer, then exported back out through parallel export
// sessions served by the TDFCursor, producing a delimiter-separated file
// identical to what the legacy export utility would have written.
//
//	go run ./examples/exportjob
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"etlvirt"
)

const importScript = `
.logon host/user,pass;
.layout OrderLayout;
.field ORDER_ID varchar(8);
.field REGION varchar(4);
.field AMOUNT varchar(12);
.field PLACED varchar(10);
.begin import tables SALES.ORDERS;
.dml label Ins;
insert into SALES.ORDERS values (
	trim(:ORDER_ID), trim(:REGION),
	cast(:AMOUNT as DECIMAL(10,2)),
	cast(:PLACED as DATE format 'YYYY-MM-DD') );
.import infile orders.txt format vartext '|' layout OrderLayout apply Ins;
.end load;
`

const exportScript = `
.logon host/user,pass;
.begin export outfile north_orders.txt format vartext '|' sessions 3;
SEL ORDER_ID, AMOUNT, PLACED FROM SALES.ORDERS WHERE REGION = 'N' ORDER BY ORDER_ID;
.end export;
`

func main() {
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	if _, err := stack.ExecCDW(`CREATE TABLE SALES.ORDERS (
		ORDER_ID VARCHAR(8) NOT NULL,
		REGION VARCHAR(4),
		AMOUNT DECIMAL(10,2),
		PLACED DATE,
		PRIMARY KEY (ORDER_ID))`); err != nil {
		log.Fatal(err)
	}

	// generate some orders across regions
	var input strings.Builder
	regions := []string{"N", "S", "E", "W"}
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&input, "ORD%05d|%s|%d.%02d|2023-%02d-%02d\n",
			i, regions[i%4], 10+i, i%100, 1+i%12, 1+i%28)
	}

	res, err := etlvirt.RunScriptSource(importScript, etlvirt.RunOptions{
		Addr:     stack.NodeAddr,
		ReadFile: func(string) ([]byte, error) { return []byte(input.String()), nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d orders\n", res.Imports[0].Inserted)

	outDir, err := os.MkdirTemp("", "etlvirt-export")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(outDir)

	res, err = etlvirt.RunScriptSource(exportScript, etlvirt.RunOptions{
		Addr: stack.NodeAddr,
		WriteFile: func(name string, data []byte) error {
			return os.WriteFile(filepath.Join(outDir, name), data, 0o644)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	er := res.Exports[0]
	fmt.Printf("exported %d rows to %s in %v\n", er.Rows, er.Outfile, er.Total.Round(1e6))

	data, err := os.ReadFile(filepath.Join(outDir, "north_orders.txt"))
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	fmt.Printf("\nfirst rows of %s (%d total):\n", er.Outfile, len(lines))
	for i := 0; i < 5 && i < len(lines); i++ {
		fmt.Println("  " + lines[i])
	}
}
