// Error handling: the worked example of the paper's §7, end to end.
//
// Loads the exact data file of Figure 5(a) — two bad dates and one
// uniqueness violation — twice:
//
//  1. with an ample error budget, reproducing the legacy error tables of
//     Figure 5 (each bad tuple isolated and recorded individually);
//
//  2. with max_errors=2, reproducing Figure 6 (the budget exhausts after two
//     individual errors and the remaining range is recorded as a block with
//     code 9057).
//
//     go run ./examples/errorhandling
package main

import (
	"fmt"
	"log"

	"etlvirt"
)

const figure5a = `123|Smith|2012-01-01
456|Brown|xxxx
789|Brown|yyyyy
123|Jones|2012-12-01
157|Jones|2012-12-01
`

func script(opts string) string {
	return `
.logon host/user,pass;
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
	errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV` + opts + `;
.dml label InsApply;
insert into PROD.CUSTOMER values (
	trim(:CUST_ID), trim(:CUST_NAME),
	cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt format vartext '|' layout CustLayout apply InsApply;
.end load;
`
}

const ddl = `CREATE TABLE PROD.CUSTOMER (
	CUST_ID VARCHAR(5) NOT NULL,
	CUST_NAME VARCHAR(50),
	JOIN_DATE DATE,
	PRIMARY KEY (CUST_ID))`

func main() {
	runOnce("Figure 5: full adaptive isolation", "")
	runOnce("Figure 6: max_errors 2 (budget exhaustion -> block entry)", " maxerrors 2")
}

func runOnce(title, opts string) {
	stack, err := etlvirt.StartStack(etlvirt.StackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	if _, err := stack.ExecCDW(ddl); err != nil {
		log.Fatal(err)
	}
	res, err := etlvirt.RunScriptSource(script(opts), etlvirt.RunOptions{
		Addr:     stack.NodeAddr,
		ReadFile: func(string) ([]byte, error) { return []byte(figure5a), nil },
	})
	if err != nil {
		log.Fatal(err)
	}
	ir := res.Imports[0]
	fmt.Printf("=== %s ===\n", title)
	fmt.Printf("inserted=%d  ET errors=%d  UV errors=%d\n\n", ir.Inserted, ir.ErrorsET, ir.ErrorsUV)

	dump := func(label, sql string) {
		rows, err := stack.ExecCDW(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(label)
		if len(rows.Rows) == 0 {
			fmt.Println("  (empty)")
		}
		for _, r := range rows.Rows {
			fmt.Printf("  rows %s-%s  code %s  field %-10s %s\n",
				r[0].Render(), r[1].Render(), r[2].Render(), r[3].Render(), r[4].Render())
		}
		fmt.Println()
	}
	dump("PROD.CUSTOMER_ET (transformation errors):",
		"SELECT SEQNO, SEQNO_END, ERRCODE, ERRFIELD, ERRMSG FROM PROD.CUSTOMER_ET ORDER BY SEQNO")
	dump("PROD.CUSTOMER_UV (uniqueness violations):",
		"SELECT SEQNO, SEQNO_END, ERRCODE, ERRFIELD, ERRMSG FROM PROD.CUSTOMER_UV ORDER BY SEQNO")

	target, err := stack.ExecCDW("SELECT cust_id, cust_name, join_date FROM PROD.CUSTOMER ORDER BY cust_id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PROD.CUSTOMER (successfully loaded tuples):")
	for _, r := range target.Rows {
		fmt.Printf("  %s|%s|%s\n", r[0].Render(), r[1].Render(), r[2].Render())
	}
	fmt.Println()
}
