package etlvirt_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"

	"etlvirt/internal/scrub"
	"etlvirt/internal/testhost"
	"etlvirt/internal/workload"
)

// TestScrubDifferential is the scenario-diversity differential test: a
// seeded generated workload — dependency-ordered batch groups mixing vartext
// and indicator imports, every legacy column type, wide rows, injected
// conversion errors and duplicate keys, an ORDER BY export and a skewed,
// bursty CDC stream — runs natively on the reference EDW and through the
// fault-injected virtualizer, and the differential scrub must come back all
// green: row counts, per-column checksums, null counts, error-table
// reconciliation and the generator's expected-outcome manifest. Then a
// single cell is mutated on the virtualized side and the scrub must find
// exactly that divergence, attributed to the right table and column.
//
// ETLVIRT_SCRUB_GROUPS sizes the scenario (CI smoke uses 4, nightly 32);
// ETLVIRT_FAULT_SEED picks the chaos seed for the virtualized side.
func TestScrubDifferential(t *testing.T) {
	groups := 32
	if s := os.Getenv("ETLVIRT_SCRUB_GROUPS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("ETLVIRT_SCRUB_GROUPS=%q: %v", s, err)
		}
		groups = v
	}
	seed := testhost.FaultSeed(t, 1)

	sc, err := workload.Generate(workload.Config{Groups: groups, Seed: 7})
	if err != nil {
		t.Fatalf("generating workload: %v", err)
	}
	t.Logf("scenario: %d groups, %d tables, %d input files, script %d bytes",
		len(sc.Groups), len(sc.Tables), len(sc.Files), len(sc.Script))

	p := testhost.StartPair(t, testhost.Options{Seed: seed, DDL: sc.DDL})
	edwRes, edwExp := p.Run(t, p.EDWAddr, sc.Script, sc.Files)
	virtRes, virtExp := p.Run(t, p.NodeAddr, sc.Script, sc.Files)
	if p.Injector.Injected() == 0 {
		t.Error("no faults were injected; the virtualized side ran unchallenged")
	}

	// Job-level outcomes must agree before the data-level scrub runs.
	if len(edwRes.Imports) != len(virtRes.Imports) {
		t.Fatalf("import count differs: edw %d, virt %d", len(edwRes.Imports), len(virtRes.Imports))
	}
	for i, l := range edwRes.Imports {
		v := virtRes.Imports[i]
		if l.Inserted != v.Inserted || l.ErrorsET != v.ErrorsET || l.ErrorsUV != v.ErrorsUV {
			t.Errorf("import %d outcome differs (seed %d):\n edw:  %+v\n virt: %+v", i, seed, l, v)
		}
	}

	// Export outfiles must be byte-identical across paths and carry the
	// manifest's row count (the generated query is ORDER BY-deterministic).
	for _, exp := range sc.Exports {
		e, v := edwExp[exp.Outfile], virtExp[exp.Outfile]
		if e == nil || v == nil {
			t.Fatalf("export %s missing: edw %d bytes, virt %d bytes", exp.Outfile, len(e), len(v))
		}
		if !bytes.Equal(e, v) {
			t.Errorf("export %s differs between paths (%d vs %d bytes)", exp.Outfile, len(e), len(v))
		}
		if rows := int64(bytes.Count(e, []byte("\n"))); rows != exp.Rows {
			t.Errorf("export %s carries %d rows, manifest expects %d", exp.Outfile, rows, exp.Rows)
		}
	}

	// The differential scrub across every table, error table, and the
	// generator's expected-outcome manifest.
	rep := p.Scrub(t, scrub.Options{Tables: sc.Tables, Expect: sc.Expect})
	if !rep.OK {
		t.Fatalf("scrub diverged under seed %d:\n%s", seed, rep.Diff())
	}
	if rep.Checks == 0 || len(rep.Tables) != len(sc.Tables) {
		t.Fatalf("scrub did not cover the scenario: %s", rep.Diff())
	}
	t.Logf("clean scrub: %d tables, %d checks", len(rep.Tables), rep.Checks)

	// Mutate one cell on the virtualized side; the scrub must detect exactly
	// this divergence and attribute it to the table and column.
	res, err := p.CDWEng.ExecSQL("SELECT MIN(PK) FROM WL.G00")
	if err != nil || len(res.Rows) == 0 || res.Rows[0][0].IsNull() {
		t.Fatalf("picking a mutation row: %v", err)
	}
	pk := res.Rows[0][0].Render()
	if _, err := p.CDWEng.ExecSQL(fmt.Sprintf(
		"UPDATE WL.G00 SET C1 = 'tampered' WHERE PK = '%s'", pk)); err != nil {
		t.Fatalf("mutating cell: %v", err)
	}
	rep2 := p.Scrub(t, scrub.Options{Tables: sc.Tables, Expect: sc.Expect})
	if rep2.OK {
		t.Fatal("scrub missed an injected single-cell mutation")
	}
	var hit int
	for _, f := range rep2.Findings {
		if f.Table == "WL.G00" && f.Column == "C1" && f.Layer == "checksum" {
			hit++
		} else {
			t.Errorf("spurious finding alongside the mutation: %+v", f)
		}
	}
	if hit != 1 {
		t.Errorf("mutation attribution: want exactly one WL.G00.C1 checksum finding, got %d:\n%s",
			hit, rep2.Diff())
	}
}
